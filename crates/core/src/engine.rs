//! The DynaSoRe placement engine (§3 of the paper).
//!
//! The engine tracks, for every view replica, how often it is read from each
//! part of the cluster and how often it is written, and uses those rates to
//! replicate views close to their readers (Algorithm 2), migrate them to
//! better locations (Algorithm 3), and evict replicas that stopped paying
//! for themselves, all within a fixed cluster-wide memory budget.

use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
use dynasore_types::{
    BrokerId, ClusterEvent, Error, Latency, MachineId, MemoryBudget, RackId, Result, SimTime,
    SubtreeId, UserId, VIEW_TRANSFER_PROTOCOL_MESSAGES,
};
use dynasore_types::{
    MemoryUsage, Message, PlacementEngine, ReplicaChangeReason, TraceEventKind, TrafficSink,
};
use dynasore_workload::GraphMutation;

use crate::config::{DynaSoReConfig, InitialPlacement};
use crate::placement::initial_assignment;
use crate::routing::{optimal_proxy_broker, TransferTally};
use crate::server::{admission_threshold_from_utilities, ServerState};
use crate::utility::{estimate_creation_profit, estimate_profit, replica_utility};

/// Per-user routing state: the brokers hosting the user's proxies and the
/// servers holding replicas of her view.
#[derive(Debug, Clone)]
struct UserState {
    read_proxy: BrokerId,
    write_proxy: BrokerId,
    /// Dense server indices (positions in `DynaSoReEngine::servers`) holding
    /// a replica of this user's view. Always non-empty.
    replicas: Vec<usize>,
}

/// The DynaSoRe engine. Create one with [`DynaSoReEngine::builder`].
///
/// # Example
///
/// ```
/// use dynasore_core::{DynaSoReEngine, InitialPlacement};
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_types::PlacementEngine;
/// use dynasore_topology::Topology;
/// use dynasore_types::MemoryBudget;
///
/// let graph = SocialGraph::generate(GraphPreset::TwitterLike, 500, 1).unwrap();
/// let topology = Topology::tree(2, 2, 5, 1).unwrap();
/// let engine = DynaSoReEngine::builder()
///     .topology(topology)
///     .budget(MemoryBudget::with_extra_percent(500, 30))
///     .initial_placement(InitialPlacement::Random { seed: 7 })
///     .build(&graph)
///     .unwrap();
/// assert_eq!(engine.name(), "dynasore-from-random");
/// ```
#[derive(Debug, Clone)]
pub struct DynaSoReEngine {
    name: String,
    topology: Topology,
    config: DynaSoReConfig,
    servers: Vec<ServerState>,
    users: Vec<UserState>,
    scratch: Scratch,
    thresholds: ThresholdCache,
    loads: LoadCache,
    /// Read targets that could not be served because the view had no live
    /// replica (only possible while the cluster lacks the capacity to
    /// re-create every lost master).
    unreachable_reads: u64,
    /// Views whose last replica was lost to a failure and re-created from
    /// the persistent tier.
    recovered_views: u64,
}

/// Cached per-subtree minima of the servers' admission thresholds.
///
/// Thresholds only change during the maintenance tick (the paper
/// disseminates them by piggybacking, i.e. they are stale between periods
/// anyway), so the per-origin minimum the hot path needs is refreshed once
/// per tick and read in O(1) instead of scanning the origin's servers on
/// every request.
#[derive(Debug, Clone)]
struct ThresholdCache {
    rack: Vec<f64>,
    inter: Vec<f64>,
    root: f64,
}

/// How many least-loaded servers each subtree candidate set remembers.
/// Views rarely hold more replicas than this inside one subtree, so the
/// exact fallback scan is almost never taken.
const LOAD_TOP_K: usize = 4;

/// The `(len, ordinal)` keys of the up-to-`LOAD_TOP_K` least-loaded servers
/// of one subtree, ascending, split into "has free space" and "any" lists.
///
/// Server loads only change when a replica is created or evicted, so the
/// engine rebuilds the affected sets on those (rare) events and the
/// per-read candidate query becomes a couple of comparisons instead of a
/// scan over the subtree's servers. `*_seen` counts every offered server;
/// when it exceeds `LOAD_TOP_K` the list is a truncation, and a query whose
/// exclusions swallow the whole list falls back to the exact scan.
#[derive(Debug, Clone, Default)]
struct CandidateSet {
    free: [(u32, u32); LOAD_TOP_K],
    free_count: u8,
    free_seen: u32,
    any: [(u32, u32); LOAD_TOP_K],
    any_count: u8,
    any_seen: u32,
}

/// Equality over the *live* list prefixes only: slots beyond `count` are
/// never read, and incremental removals leave stale keys there that a fresh
/// rebuild zero-fills.
impl PartialEq for CandidateSet {
    fn eq(&self, other: &Self) -> bool {
        self.free_seen == other.free_seen
            && self.any_seen == other.any_seen
            && self.free[..self.free_count as usize] == other.free[..other.free_count as usize]
            && self.any[..self.any_count as usize] == other.any[..other.any_count as usize]
    }
}

impl Eq for CandidateSet {}

impl CandidateSet {
    fn offer_into(
        list: &mut [(u32, u32); LOAD_TOP_K],
        count: &mut u8,
        seen: &mut u32,
        key: (u32, u32),
    ) {
        *seen += 1;
        Self::list_insert(list, count, key);
    }

    /// Inserts `key` into a sorted top-K list, dropping the largest entry
    /// when the list is full and `key` beats it. Does not touch `seen` —
    /// callers account for the population change themselves.
    fn list_insert(list: &mut [(u32, u32); LOAD_TOP_K], count: &mut u8, key: (u32, u32)) {
        let n = *count as usize;
        let mut pos = n;
        for (k, entry) in list.iter().enumerate().take(n) {
            if key < *entry {
                pos = k;
                break;
            }
        }
        if pos == n {
            if n < LOAD_TOP_K {
                list[n] = key;
                *count += 1;
            }
            return;
        }
        let last = if n < LOAD_TOP_K { n } else { LOAD_TOP_K - 1 };
        for k in (pos..last).rev() {
            list[k + 1] = list[k];
        }
        list[pos] = key;
        if n < LOAD_TOP_K {
            *count += 1;
        }
    }

    /// Applies one list's share of an incremental update: the tracked
    /// server's key changed from `old` to `new`, where `None` means the
    /// server was/is not part of this list's population (e.g. it gained or
    /// lost its free slot for the `free` list).
    ///
    /// Returns `false` when the list can no longer prove it holds the K
    /// smallest keys — removing a listed entry from a truncated list, or a
    /// listed server whose key grew past the retained tail — and the caller
    /// must rebuild from an exact scan. Every other transition is resolved
    /// in O(K): the surviving entries are provably still the smallest, and
    /// any unseen key is no smaller than the old full list's maximum.
    fn list_update(
        list: &mut [(u32, u32); LOAD_TOP_K],
        count: &mut u8,
        seen: &mut u32,
        old: Option<(u32, u32)>,
        new: Option<(u32, u32)>,
    ) -> bool {
        let n = *count as usize;
        let pos = old.and_then(|key| list[..n].iter().position(|e| *e == key));
        match (old, new) {
            (None, None) => true,
            (None, Some(key)) => {
                *seen += 1;
                Self::list_insert(list, count, key);
                true
            }
            (Some(_), None) => match pos {
                Some(p) => {
                    if *seen > n as u32 {
                        // Truncated: the successor that should take the
                        // freed slot was never recorded.
                        return false;
                    }
                    for k in p..n - 1 {
                        list[k] = list[k + 1];
                    }
                    *count -= 1;
                    *seen -= 1;
                    true
                }
                None => {
                    // The server sat beyond the truncated tail; the listed
                    // entries are still the K smallest of what remains.
                    debug_assert!(*seen > n as u32, "complete list missing a member");
                    *seen = seen.saturating_sub(1);
                    true
                }
            },
            (Some(_), Some(key)) => match pos {
                Some(p) => {
                    // Every unseen key is ≥ the old K-th smallest (the list
                    // maximum), so the new key can be re-inserted exactly as
                    // long as it does not grow past that bound.
                    let old_max = list[n - 1];
                    for k in p..n - 1 {
                        list[k] = list[k + 1];
                    }
                    *count -= 1;
                    let truncated = *seen > n as u32;
                    if truncated && key > old_max {
                        // The key may have fallen behind an unseen one.
                        return false;
                    }
                    Self::list_insert(list, count, key);
                    true
                }
                None => {
                    if n < LOAD_TOP_K {
                        // A complete list contains its whole population; a
                        // miss means the caller's bookkeeping drifted.
                        debug_assert!(*seen > n as u32, "complete list missing a member");
                        return false;
                    }
                    // Beyond the truncated tail: pulls into the top-K only
                    // by beating the current largest listed key.
                    if key < list[n - 1] {
                        Self::list_insert(list, count, key);
                    }
                    true
                }
            },
        }
    }

    /// Incrementally applies a load change of server `ord` (`old_len` →
    /// `new_len` views, `old_space`/`new_space` = had/has a free slot) to
    /// both top-K lists. Returns `false` when either list lost track of its
    /// top-K and the whole set must be rebuilt with an exact scan.
    fn update(
        &mut self,
        ord: u32,
        old_len: u32,
        new_len: u32,
        old_space: bool,
        new_space: bool,
    ) -> bool {
        let old_key = (old_len, ord);
        let new_key = (new_len, ord);
        let any_ok = Self::list_update(
            &mut self.any,
            &mut self.any_count,
            &mut self.any_seen,
            Some(old_key),
            Some(new_key),
        );
        let free_ok = Self::list_update(
            &mut self.free,
            &mut self.free_count,
            &mut self.free_seen,
            old_space.then_some(old_key),
            new_space.then_some(new_key),
        );
        any_ok && free_ok
    }

    fn offer(&mut self, key: (u32, u32), has_space: bool) {
        Self::offer_into(&mut self.any, &mut self.any_count, &mut self.any_seen, key);
        if has_space {
            Self::offer_into(
                &mut self.free,
                &mut self.free_count,
                &mut self.free_seen,
                key,
            );
        }
    }

    /// `Some(answer)` when the cache can answer exactly (preferring servers
    /// with free space, then any server, `(len, ordinal)` ascending, never
    /// an excluded server); `None` when the exclusions exhaust a truncated
    /// list and the caller must fall back to the exact scan.
    fn query(&self, exclude: &[usize]) -> Option<Option<usize>> {
        for k in 0..self.free_count as usize {
            let ord = self.free[k].1 as usize;
            if !exclude.contains(&ord) {
                return Some(Some(ord));
            }
        }
        if self.free_seen > LOAD_TOP_K as u32 {
            return None;
        }
        for k in 0..self.any_count as usize {
            let ord = self.any[k].1 as usize;
            if !exclude.contains(&ord) {
                return Some(Some(ord));
            }
        }
        if self.any_seen > LOAD_TOP_K as u32 {
            return None;
        }
        Some(None)
    }
}

/// Per-subtree [`CandidateSet`]s: one per rack, one per intermediate
/// switch, one for the whole cluster.
#[derive(Debug, Clone)]
struct LoadCache {
    rack: Vec<CandidateSet>,
    inter: Vec<CandidateSet>,
    root: CandidateSet,
}

/// Reusable per-request buffers: allocated once at engine construction and
/// recycled so that steady-state `handle_read`/`handle_write` perform zero
/// heap allocations.
#[derive(Debug, Clone)]
struct Scratch {
    /// Views transferred per machine during the current request (replaces a
    /// per-request `HashMap<MachineId, u64>`).
    tally: TransferTally,
    /// Per-server utility list for the admission-threshold refresh.
    utilities: Vec<f64>,
    /// Victim list for the eviction sweep.
    views: Vec<UserId>,
    /// Origins whose read history moves to a newly created replica.
    origins: Vec<SubtreeId>,
}

/// Builder for [`DynaSoReEngine`].
#[derive(Debug, Clone)]
pub struct DynaSoReEngineBuilder {
    topology: Option<Topology>,
    budget: Option<MemoryBudget>,
    initial_placement: InitialPlacement,
    counter_slots: usize,
    admission_fill_target: f64,
    eviction_threshold: f64,
    eviction_target: f64,
    congestion_penalty_per_sec: f64,
    name: Option<String>,
}

impl Default for DynaSoReEngineBuilder {
    fn default() -> Self {
        DynaSoReEngineBuilder {
            topology: None,
            budget: None,
            initial_placement: InitialPlacement::Random { seed: 0 },
            counter_slots: 24,
            admission_fill_target: 0.90,
            eviction_threshold: 0.95,
            eviction_target: 0.90,
            congestion_penalty_per_sec: 500.0,
            name: None,
        }
    }
}

impl DynaSoReEngineBuilder {
    /// Sets the cluster topology (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the memory budget (defaults to exactly one slot per view).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the initial view placement (defaults to random with seed 0).
    pub fn initial_placement(mut self, placement: InitialPlacement) -> Self {
        self.initial_placement = placement;
        self
    }

    /// Number of periods in the rotating statistics window (default 24).
    pub fn counter_slots(mut self, slots: usize) -> Self {
        self.counter_slots = slots;
        self
    }

    /// Fraction of memory protected by the admission threshold (default
    /// 0.9).
    pub fn admission_fill_target(mut self, target: f64) -> Self {
        self.admission_fill_target = target;
        self
    }

    /// Occupancy that triggers the background eviction sweep (default 0.95).
    pub fn eviction_threshold(mut self, threshold: f64) -> Self {
        self.eviction_threshold = threshold;
        self
    }

    /// Occupancy the eviction sweep aims for (default 0.90).
    pub fn eviction_target(mut self, target: f64) -> Self {
        self.eviction_target = target;
        self
    }

    /// Profit units one second of queueing delay at a candidate rack's
    /// switch costs in replica-placement decisions (default 500; 0 disables
    /// congestion-aware placement). Only effective when the driving sink
    /// reports real congestion, i.e. under a time-aware network model.
    pub fn congestion_penalty_per_sec(mut self, per_sec: f64) -> Self {
        self.congestion_penalty_per_sec = per_sec;
        self
    }

    /// Overrides the engine name used in reports.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builds the engine over `graph`.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology or budget is missing/inconsistent,
    /// the cluster cannot hold one copy of every view, or the initial
    /// placement cannot be computed.
    pub fn build(self, graph: &SocialGraph) -> Result<DynaSoReEngine> {
        let topology = self
            .topology
            .ok_or_else(|| Error::invalid_config("DynaSoReEngine requires a topology"))?;
        let budget = self
            .budget
            .unwrap_or_else(|| MemoryBudget::exact(graph.user_count()));
        if budget.view_count() != graph.user_count() {
            return Err(Error::invalid_config(format!(
                "memory budget covers {} views but the graph has {} users",
                budget.view_count(),
                graph.user_count()
            )));
        }
        let mut config = DynaSoReConfig::new(budget);
        config.counter_slots = self.counter_slots;
        config.admission_fill_target = self.admission_fill_target;
        config.eviction_threshold = self.eviction_threshold;
        config.eviction_target = self.eviction_target;
        config.congestion_penalty_per_sec = self.congestion_penalty_per_sec;
        config.validate()?;

        let server_count = topology.server_count();
        let capacity = config.budget.slots_per_server(server_count)?;
        let total_capacity = capacity * server_count;
        if total_capacity < graph.user_count() {
            return Err(Error::InsufficientCapacity {
                required: graph.user_count(),
                available: total_capacity,
            });
        }

        let assignment = initial_assignment(&self.initial_placement, graph, &topology)?;

        // `servers[i]` mirrors `topology.servers()[i]`, so a machine's dense
        // engine index is exactly `topology.server_ordinal(machine)`.
        let mut servers: Vec<ServerState> = topology
            .servers()
            .iter()
            .map(|s| {
                ServerState::new(
                    s.machine(),
                    capacity,
                    config.counter_slots,
                    graph.user_count(),
                )
            })
            .collect();

        let mut users = Vec::with_capacity(graph.user_count());
        for user in graph.users() {
            let mut sidx = assignment[user.as_usize()] as usize;
            // The initial assignment is balanced, but capacity rounding can
            // leave a server one view short of room; fall back to the least
            // loaded server in that case.
            if servers[sidx].is_full() {
                sidx = (0..servers.len())
                    .min_by_key(|&i| servers[i].len())
                    .expect("at least one server");
            }
            servers[sidx].insert(user);
            let broker = topology.local_broker(servers[sidx].machine())?;
            users.push(UserState {
                read_proxy: broker,
                write_proxy: broker,
                replicas: vec![sidx],
            });
        }

        let name = self
            .name
            .unwrap_or_else(|| format!("dynasore-from-{}", self.initial_placement.label()));

        let scratch = Scratch {
            tally: TransferTally::new(&topology),
            utilities: Vec::new(),
            views: Vec::new(),
            origins: Vec::new(),
        };
        // All thresholds start at zero, so every cached minimum does too.
        let thresholds = ThresholdCache {
            rack: vec![0.0; topology.rack_count()],
            inter: vec![0.0; topology.intermediate_count()],
            root: 0.0,
        };
        let loads = LoadCache {
            rack: vec![CandidateSet::default(); topology.rack_count()],
            inter: vec![CandidateSet::default(); topology.intermediate_count()],
            root: CandidateSet::default(),
        };
        let mut engine = DynaSoReEngine {
            name,
            topology,
            config,
            servers,
            users,
            scratch,
            thresholds,
            loads,
            unreachable_reads: 0,
            recovered_views: 0,
        };
        engine.rebuild_load_cache();
        Ok(engine)
    }
}

impl DynaSoReEngine {
    /// Starts building an engine.
    pub fn builder() -> DynaSoReEngineBuilder {
        DynaSoReEngineBuilder::default()
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> &DynaSoReConfig {
        &self.config
    }

    /// The machines currently holding a replica of `user`'s view.
    pub fn replica_servers(&self, user: UserId) -> Vec<MachineId> {
        self.users
            .get(user.as_usize())
            .map(|u| {
                u.replicas
                    .iter()
                    .map(|&i| self.servers[i].machine())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The broker hosting `user`'s read proxy.
    pub fn read_proxy(&self, user: UserId) -> Option<BrokerId> {
        self.users.get(user.as_usize()).map(|u| u.read_proxy)
    }

    /// The broker hosting `user`'s write proxy.
    pub fn write_proxy(&self, user: UserId) -> Option<BrokerId> {
        self.users.get(user.as_usize()).map(|u| u.write_proxy)
    }

    /// Occupancy of every server, as `(machine, fraction in use)`.
    pub fn server_occupancies(&self) -> Vec<(MachineId, f64)> {
        self.servers
            .iter()
            .map(|s| (s.machine(), s.occupancy()))
            .collect()
    }

    /// The per-server view capacity derived from the memory budget.
    pub fn capacity_per_server(&self) -> usize {
        self.servers.first().map(ServerState::capacity).unwrap_or(0)
    }

    /// Total reads recorded in the current statistics window across all
    /// replicas of `user`'s view. Used by the flash-event experiment to
    /// report reads per replica.
    pub fn recorded_reads(&self, user: UserId) -> u64 {
        self.users
            .get(user.as_usize())
            .map(|u| {
                u.replicas
                    .iter()
                    .filter_map(|&i| self.servers[i].stats(user))
                    .map(|s| s.total_reads())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The replica of `view` closest to `from` (LCA routing policy, ties by
    /// machine id), as `(engine index, machine)`. Allocation-free.
    fn closest_replica_of(&self, view: UserId, from: MachineId) -> Option<(usize, MachineId)> {
        let mut best: Option<(u32, u32, usize)> = None;
        for &i in &self.users[view.as_usize()].replicas {
            let machine = self.servers[i].machine();
            let key = (self.topology.distance(from, machine), machine.index(), i);
            if best.map_or(true, |b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        best.map(|(_, machine, i)| (i, MachineId::new(machine)))
    }

    /// The closest other replica of `view` as seen from `sidx`, if any.
    fn nearest_other_replica(&self, view: UserId, sidx: usize) -> Option<MachineId> {
        let machine = self.servers[sidx].machine();
        let mut best: Option<(u32, u32)> = None;
        for &i in &self.users[view.as_usize()].replicas {
            if i == sidx {
                continue;
            }
            let other = self.servers[i].machine();
            let key = (self.topology.distance(machine, other), other.index());
            if best.map_or(true, |b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, machine)| MachineId::new(machine))
    }

    /// Utility of the replica of `view` stored on server `sidx` (infinite
    /// for sole replicas).
    fn utility_of(&self, view: UserId, sidx: usize) -> f64 {
        let stats = match self.servers[sidx].stats(view) {
            Some(s) => s,
            None => return 0.0,
        };
        replica_utility(
            &self.topology,
            stats,
            self.servers[sidx].machine(),
            self.nearest_other_replica(view, sidx),
            self.users[view.as_usize()].write_proxy.machine(),
        )
    }

    /// The least-loaded server under `origin` that does not already hold a
    /// replica of the view (`exclude`). Servers with free space are
    /// preferred; a full server may be returned (the caller then evicts).
    fn least_loaded_server_in(&self, origin: SubtreeId, exclude: &[usize]) -> Option<usize> {
        if let SubtreeId::Machine(m) = origin {
            let machine = MachineId::new(m);
            if !self.topology.is_live(machine) {
                return None;
            }
            let i = self.topology.server_ordinal(machine)?;
            return if exclude.contains(&i) { None } else { Some(i) };
        }
        let set = match origin {
            SubtreeId::Root => Some(&self.loads.root),
            SubtreeId::Intermediate(i) => self.loads.inter.get(i as usize),
            SubtreeId::Rack(r) => self.loads.rack.get(r as usize),
            SubtreeId::Machine(_) => unreachable!("handled above"),
        }?;
        match set.query(exclude) {
            Some(answer) => answer,
            None => self.least_loaded_scan(origin, exclude),
        }
    }

    /// The exact form of [`DynaSoReEngine::least_loaded_server_in`]: a scan
    /// over the origin's servers. Used as the fallback when the view's
    /// exclusions swallow a whole (truncated) candidate set.
    fn least_loaded_scan(&self, origin: SubtreeId, exclude: &[usize]) -> Option<usize> {
        // `servers_in_subtree_slice` is a contiguous range in machine order,
        // so scanning it keeps the old "first least-loaded in machine order"
        // tie-breaking without collecting candidates.
        let mut best_any: Option<(usize, usize)> = None; // (len, index)
        let mut best_free: Option<(usize, usize)> = None;
        for server in self.topology.servers_in_subtree_slice(origin) {
            if !self.topology.is_live(server.machine()) {
                continue;
            }
            let Some(i) = self.topology.server_ordinal(server.machine()) else {
                continue;
            };
            if exclude.contains(&i) {
                continue;
            }
            let key = (self.servers[i].len(), i);
            if best_any.map_or(true, |b| key < b) {
                best_any = Some(key);
            }
            if !self.servers[i].is_full() && best_free.map_or(true, |b| key < b) {
                best_free = Some(key);
            }
        }
        best_free.or(best_any).map(|(_, i)| i)
    }

    /// Rebuilds the candidate set of one subtree from the current server
    /// loads.
    fn build_candidate_set(&self, subtree: SubtreeId) -> CandidateSet {
        let mut set = CandidateSet::default();
        for server in self.topology.servers_in_subtree_slice(subtree) {
            // Dead servers never receive replicas: the liveness mask filters
            // them out of the candidate sets here, so the per-request query
            // path stays mask-free.
            if !self.topology.is_live(server.machine()) {
                continue;
            }
            let Some(i) = self.topology.server_ordinal(server.machine()) else {
                continue;
            };
            let key = (self.servers[i].len() as u32, i as u32);
            set.offer(key, !self.servers[i].is_full());
        }
        set
    }

    /// Rebuilds every candidate set (used once after construction).
    fn rebuild_load_cache(&mut self) {
        for r in 0..self.topology.rack_count() {
            self.loads.rack[r] = self.build_candidate_set(SubtreeId::Rack(r as u32));
        }
        for i in 0..self.topology.intermediate_count() {
            self.loads.inter[i] = self.build_candidate_set(SubtreeId::Intermediate(i as u32));
        }
        self.loads.root = self.build_candidate_set(SubtreeId::Root);
    }

    /// Refreshes the candidate sets containing server `sidx` after its load
    /// changed from `old_len` views (a replica was created or evicted).
    ///
    /// The changed key moves by ±1, so each per-subtree top-K list is
    /// patched in O(K) instead of rescanning its servers; only when a
    /// truncated list can no longer prove its top-K (the changed server fell
    /// past the retained tail) does that one set fall back to the exact
    /// rebuild scan. This is what keeps replica churn cheap when the cluster
    /// grows past the paper's 225 servers: the former full rescan of the
    /// root set cost O(servers) per churn event.
    fn update_load_cache(&mut self, sidx: usize, old_len: usize) {
        let machine = self.servers[sidx].machine();
        // Dead machines are filtered out of every candidate set when the
        // liveness mask changes (bulk rebuild), so their load changes cannot
        // move a top-K list.
        if !self.topology.is_live(machine) {
            return;
        }
        let new_len = self.servers[sidx].len();
        if new_len == old_len {
            return;
        }
        let capacity = self.servers[sidx].capacity();
        let old_space = old_len < capacity;
        let new_space = new_len < capacity;
        let (ord, old_len, new_len) = (sidx as u32, old_len as u32, new_len as u32);
        if let Ok(rack) = self.topology.rack_of(machine) {
            if !self.loads.rack[rack.as_usize()].update(ord, old_len, new_len, old_space, new_space)
            {
                self.loads.rack[rack.as_usize()] =
                    self.build_candidate_set(SubtreeId::Rack(rack.index()));
            }
            // Flat topologies have no intermediate tier: their (empty) inter
            // sets track no servers, so there is nothing to patch.
            if self.topology.kind() == dynasore_topology::TopologyKind::Tree {
                let inter = self.topology.intermediate_of_rack(rack) as usize;
                if !self.loads.inter[inter].update(ord, old_len, new_len, old_space, new_space) {
                    self.loads.inter[inter] =
                        self.build_candidate_set(SubtreeId::Intermediate(inter as u32));
                }
            }
        }
        if !self
            .loads
            .root
            .update(ord, old_len, new_len, old_space, new_space)
        {
            self.loads.root = self.build_candidate_set(SubtreeId::Root);
        }
    }

    /// The lowest admission threshold among the servers under `origin`
    /// (disseminated by piggybacking in the paper; served from the
    /// per-subtree cache here — thresholds only move during the tick).
    fn admission_threshold_of(&self, origin: SubtreeId) -> f64 {
        match origin {
            SubtreeId::Root => self.thresholds.root,
            SubtreeId::Intermediate(i) => self
                .thresholds
                .inter
                .get(i as usize)
                .copied()
                .unwrap_or(f64::INFINITY),
            SubtreeId::Rack(r) => self
                .thresholds
                .rack
                .get(r as usize)
                .copied()
                .unwrap_or(f64::INFINITY),
            SubtreeId::Machine(m) => {
                let machine = MachineId::new(m);
                if !self.topology.is_live(machine) {
                    return f64::INFINITY;
                }
                self.topology
                    .server_ordinal(machine)
                    .map(|i| self.servers[i].admission_threshold())
                    .unwrap_or(f64::INFINITY)
            }
        }
    }

    /// Rebuilds the per-subtree threshold minima from the current server
    /// thresholds. Called once per maintenance tick, right after the
    /// thresholds themselves are refreshed.
    fn refresh_threshold_cache(&mut self) {
        self.thresholds
            .rack
            .iter_mut()
            .for_each(|t| *t = f64::INFINITY);
        self.thresholds
            .inter
            .iter_mut()
            .for_each(|t| *t = f64::INFINITY);
        self.thresholds.root = f64::INFINITY;
        for server in &self.servers {
            let machine = server.machine();
            if !self.topology.is_live(machine) {
                continue;
            }
            let t = server.admission_threshold();
            if let Ok(rack) = self.topology.rack_of(machine) {
                let r = rack.as_usize();
                self.thresholds.rack[r] = self.thresholds.rack[r].min(t);
                let i = self.topology.intermediate_of_rack(rack) as usize;
                self.thresholds.inter[i] = self.thresholds.inter[i].min(t);
            }
            self.thresholds.root = self.thresholds.root.min(t);
        }
    }

    /// The lowest-utility evictable view on server `sidx`: more than one
    /// replica, finite utility, ties broken by [`UserId`] (matching the
    /// ascending-id iteration of the former `BTreeMap` storage, so victim
    /// choice is independent of slab slot layout).
    fn eviction_victim(&self, sidx: usize) -> Option<UserId> {
        let mut victim: Option<(f64, UserId)> = None;
        for (view, _) in self.servers[sidx].views() {
            if self.users[view.as_usize()].replicas.len() <= 1 {
                continue;
            }
            let utility = self.utility_of(view, sidx);
            if !utility.is_finite() {
                continue;
            }
            let better = match victim {
                None => true,
                Some((best, best_view)) => utility < best || (utility == best && view < best_view),
            };
            if better {
                victim = Some((utility, view));
            }
        }
        victim.map(|(_, view)| view)
    }

    /// Frees one slot on `target` if it is full, by evicting its
    /// lowest-utility replica that has copies elsewhere. Returns `true` if
    /// the server has room afterwards.
    fn ensure_space(&mut self, target: usize, out: &mut dyn TrafficSink) -> bool {
        if !self.servers[target].is_full() {
            return true;
        }
        match self.eviction_victim(target) {
            Some(view) => {
                if self.remove_replica(view, target, out) {
                    out.trace(TraceEventKind::ReplicaDropped {
                        user: view,
                        server: self.servers[target].machine(),
                        reason: ReplicaChangeReason::Eviction,
                    });
                }
                !self.servers[target].is_full()
            }
            None => false,
        }
    }

    /// Creates a replica of `view` on server `target`, copying its data from
    /// the replica on `source`. Statistics for the origins the new replica
    /// will serve are transferred from the source replica.
    fn create_replica(
        &mut self,
        view: UserId,
        source: usize,
        target: usize,
        out: &mut dyn TrafficSink,
    ) -> bool {
        if self.servers[target].contains(view) || source == target {
            return false;
        }
        if !self.ensure_space(target, out) {
            return false;
        }
        let source_machine = self.servers[source].machine();
        let target_machine = self.servers[target].machine();
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();

        // Control messages: the storing server asks the write proxy to
        // create the replica; the write proxy instructs the target server;
        // the view data is then transferred from the source replica.
        out.record(Message::protocol(source_machine, write_proxy));
        out.record(Message::protocol(write_proxy, target_machine));
        for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
            out.record(Message::protocol(source_machine, target_machine));
        }
        // Routing-table updates for the brokers that will now read the new
        // replica (the brokers of the target's rack).
        if let Ok(rack) = self.topology.rack_of(target_machine) {
            for broker in self.topology.brokers_in_rack_slice(rack) {
                out.record(Message::protocol(write_proxy, broker.machine()));
            }
        }

        let old_len = self.servers[target].len();
        self.servers[target].insert(view);
        self.update_load_cache(target, old_len);
        self.users[view.as_usize()].replicas.push(target);
        self.users[view.as_usize()].replicas.sort_unstable();

        // Hand over the read history of the origins the new replica is now
        // closest to, so the source stops proposing replicas for readers it
        // no longer serves.
        let mut origins = std::mem::take(&mut self.scratch.origins);
        origins.clear();
        if let Some(stats) = self.servers[source].stats(view) {
            origins.extend(stats.reads().map(|(origin, _)| origin));
        }
        for origin in origins.drain(..) {
            if self.topology.origin_distance(target_machine, origin)
                < self.topology.origin_distance(source_machine, origin)
            {
                let moved = self.servers[source]
                    .stats_mut(view)
                    .map(|s| s.take_origin(origin))
                    .unwrap_or(0);
                if let Some(stats) = self.servers[target].stats_mut(view) {
                    stats.record_reads(origin, moved);
                }
            }
        }
        self.scratch.origins = origins;
        true
    }

    /// Removes the replica of `view` stored on server `sidx`. Never removes
    /// the last replica.
    fn remove_replica(&mut self, view: UserId, sidx: usize, out: &mut dyn TrafficSink) -> bool {
        if self.users[view.as_usize()].replicas.len() <= 1 {
            return false;
        }
        if !self.servers[sidx].contains(view) {
            return false;
        }
        let server_machine = self.servers[sidx].machine();
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();
        // The write proxy is the synchronisation point for evictions and the
        // brokers that used to read this replica must update their routing
        // tables.
        out.record(Message::protocol(server_machine, write_proxy));
        if let Ok(rack) = self.topology.rack_of(server_machine) {
            for broker in self.topology.brokers_in_rack_slice(rack) {
                out.record(Message::protocol(write_proxy, broker.machine()));
            }
        }
        let old_len = self.servers[sidx].len();
        self.servers[sidx].remove(view);
        self.update_load_cache(sidx, old_len);
        self.users[view.as_usize()].replicas.retain(|&i| i != sidx);
        true
    }

    /// Profit penalty for placing a replica on `machine`, derived from the
    /// sink's live congestion signal for the machine's rack switch: seconds
    /// of pending queueing delay × the configured penalty rate. Unit-count
    /// sinks report zero delay, so decisions are untouched outside a
    /// time-aware run. Allocation-free.
    fn rack_congestion_penalty(&self, out: &dyn TrafficSink, machine: MachineId) -> i64 {
        if self.config.congestion_penalty_per_sec <= 0.0 {
            return 0;
        }
        let Ok(rack) = self.topology.rack_of(machine) else {
            return 0;
        };
        let delay = out.congestion(SubtreeId::Rack(rack.index()));
        if delay == Latency::ZERO {
            return 0;
        }
        (delay.as_secs_f64() * self.config.congestion_penalty_per_sec) as i64
    }

    /// Algorithm 2 (*Evaluate Creation of Replica*) followed, when no
    /// replica is created, by Algorithm 3 (*Compute Optimal Position of
    /// Replica*), run by server `sidx` after serving a read of `view`.
    ///
    /// Both algorithms are congestion-aware: a candidate position's profit
    /// is reduced by [`DynaSoReEngine::rack_congestion_penalty`], so under a
    /// time-aware network model replicas steer away from racks whose switch
    /// queues are backed up instead of piling further load onto them.
    fn evaluate_replica(&mut self, view: UserId, sidx: usize, out: &mut dyn TrafficSink) {
        let server_machine = self.servers[sidx].machine();
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();

        // --- Algorithm 2: try to create a replica near one of the origins.
        // The profit of adding a replica only counts the readers the routing
        // policy would redirect to it (§3.2, "simulating its addition").
        // Decisions are computed over borrowed state (no statistics clone);
        // mutations are deferred until the borrows end.
        let new_replica = {
            let Some(stats) = self.servers[sidx].stats(view) else {
                return;
            };
            let replicas = &self.users[view.as_usize()].replicas;
            let mut best_profit = 0i64;
            let mut new_replica: Option<usize> = None;
            for (origin, _reads) in stats.reads() {
                let candidate = match self.least_loaded_server_in(origin, replicas) {
                    Some(c) => c,
                    None => continue,
                };
                let candidate_machine = self.servers[candidate].machine();
                let profit = estimate_creation_profit(
                    &self.topology,
                    stats,
                    candidate_machine,
                    server_machine,
                    write_proxy,
                ) - self.rack_congestion_penalty(out, candidate_machine);
                let threshold = self.admission_threshold_of(origin);
                if (profit as f64) > threshold && profit > best_profit {
                    best_profit = profit;
                    new_replica = Some(candidate);
                }
            }
            new_replica
        };
        if let Some(target) = new_replica {
            if self.create_replica(view, sidx, target, out) {
                out.trace(TraceEventKind::ReplicaCreated {
                    user: view,
                    server: self.servers[target].machine(),
                    reason: ReplicaChangeReason::Placement,
                });
                return;
            }
            // The chosen server had no space it could free: fall through to
            // the migration logic, as the paper does when no replica can be
            // created. (A failed creation mutates nothing, so the state the
            // migration decision sees is unchanged.)
        }

        // --- Algorithm 3: no replica can be created; consider migrating (or
        // dropping) this replica.
        enum Decision {
            Keep,
            Drop,
            Migrate(usize),
        }
        let decision = {
            let Some(stats) = self.servers[sidx].stats(view) else {
                return;
            };
            let replicas = &self.users[view.as_usize()].replicas;
            let nearest = self
                .nearest_other_replica(view, sidx)
                .unwrap_or(server_machine);
            let has_other_replicas = replicas.len() > 1;
            let mut best_profit =
                estimate_profit(&self.topology, stats, server_machine, nearest, write_proxy);
            let mut best_position: Option<usize> = None;
            for (origin, _reads) in stats.reads() {
                let candidate = match self.least_loaded_server_in(origin, replicas) {
                    Some(c) => c,
                    None => continue,
                };
                let candidate_machine = self.servers[candidate].machine();
                let profit = estimate_profit(
                    &self.topology,
                    stats,
                    candidate_machine,
                    nearest,
                    write_proxy,
                ) - self.rack_congestion_penalty(out, candidate_machine);
                let threshold = self.admission_threshold_of(origin);
                if profit > best_profit && (profit as f64) > threshold {
                    best_profit = profit;
                    best_position = Some(candidate);
                }
            }
            if best_profit < 0 && has_other_replicas {
                Decision::Drop
            } else if let Some(target) = best_position {
                Decision::Migrate(target)
            } else {
                Decision::Keep
            }
        };
        match decision {
            // This replica costs more than it saves: drop it.
            Decision::Drop => {
                if self.remove_replica(view, sidx, out) {
                    out.trace(TraceEventKind::ReplicaDropped {
                        user: view,
                        server: server_machine,
                        reason: ReplicaChangeReason::Placement,
                    });
                }
            }
            // Migrate: create the replica at the better position, then
            // remove the local copy (the view keeps at least one replica
            // because the new one was just created).
            Decision::Migrate(target) => {
                if self.create_replica(view, sidx, target, out)
                    && self.remove_replica(view, sidx, out)
                {
                    out.trace(TraceEventKind::ReplicaMoved {
                        user: view,
                        from: server_machine,
                        to: self.servers[target].machine(),
                        reason: ReplicaChangeReason::Placement,
                    });
                }
            }
            Decision::Keep => {}
        }
    }

    /// Post-request proxy placement (§3.2): move the proxy towards the part
    /// of the cluster most of the data came from, as tallied in
    /// `scratch.tally` by the request that just executed.
    fn maybe_migrate_proxy(
        &mut self,
        user: UserId,
        is_write_proxy: bool,
        out: &mut dyn TrafficSink,
    ) {
        let Some(best) = optimal_proxy_broker(&self.topology, &mut self.scratch.tally) else {
            return;
        };
        let uidx = user.as_usize();
        if is_write_proxy {
            if self.users[uidx].write_proxy != best {
                self.users[uidx].write_proxy = best;
                // The write proxy's location is stored by every replica, so
                // they must be notified of the move (iterate by index — the
                // replica list is not mutated here).
                for k in 0..self.users[uidx].replicas.len() {
                    let ridx = self.users[uidx].replicas[k];
                    out.record(Message::protocol(
                        best.machine(),
                        self.servers[ridx].machine(),
                    ));
                }
            }
        } else if self.users[uidx].read_proxy != best {
            self.users[uidx].read_proxy = best;
        }
    }

    // --- Parallel write batches --------------------------------------------

    /// Smallest batch worth farming out to worker threads: below this the
    /// scope spawn/join overhead outweighs the sharded work.
    const MIN_PARALLEL_BATCH: usize = 32;

    /// Rack-aligned shard boundaries over the dense server slab: a sorted
    /// list of cut points `[0, …, servers.len()]` whose interior cuts all
    /// fall on rack boundaries, balanced by server count into at most
    /// `max_shards` shards. `None` when the cluster cannot yield two shards.
    fn shard_plan(&self, max_shards: usize) -> Option<Vec<usize>> {
        let total = self.servers.len();
        if max_shards < 2 || total == 0 {
            return None;
        }
        // Cumulative server count at each rack boundary. Machines are
        // numbered rack by rack, so `servers[cuts[r-1]..cuts[r]]` is exactly
        // rack r's slice of the slab.
        let mut cuts: Vec<usize> = Vec::with_capacity(self.topology.rack_count());
        let mut acc = 0usize;
        for rack in 0..self.topology.rack_count() {
            acc += self
                .topology
                .servers_in_rack_slice(RackId::new(rack as u32))
                .len();
            cuts.push(acc);
        }
        if cuts.last() != Some(&total) {
            return None; // Slab out of step with the topology: stay serial.
        }
        let shards = max_shards.min(cuts.len());
        if shards < 2 {
            return None;
        }
        let mut plan = Vec::with_capacity(shards + 1);
        plan.push(0usize);
        for k in 1..shards {
            // The rack boundary nearest the ideal equal-size cut point.
            let ideal = total * k / shards;
            let i = cuts.partition_point(|&c| c < ideal);
            let cut = if i == 0 {
                cuts[0]
            } else if i >= cuts.len() {
                cuts[cuts.len() - 1]
            } else if ideal - cuts[i - 1] <= cuts[i] - ideal {
                cuts[i - 1]
            } else {
                cuts[i]
            };
            if cut > *plan.last().unwrap() && cut < total {
                plan.push(cut);
            }
        }
        plan.push(total);
        if plan.len() < 3 {
            return None;
        }
        Some(plan)
    }

    /// The shard whose server range contains *every* replica of `user`, or
    /// `None` when the replicas straddle a shard boundary (or the user is
    /// unknown or replica-less) — those writes take the serialized slow
    /// path. The replica list is a handful of entries, so the min/max scan
    /// costs the same as the message loop that follows it.
    fn shard_of_write(&self, user: UserId, plan: &[usize]) -> Option<usize> {
        let state = self.users.get(user.as_usize())?;
        let mut lo = *state.replicas.first()?;
        let mut hi = lo;
        for &ridx in &state.replicas[1..] {
            lo = lo.min(ridx);
            hi = hi.max(ridx);
        }
        let shard = plan.partition_point(|&b| b <= lo) - 1;
        (hi < plan[shard + 1]).then_some(shard)
    }

    // --- Cluster dynamics --------------------------------------------------

    /// The topology (including its liveness mask) as this engine sees it.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Views whose last replica was lost to a failure and re-created from
    /// the persistent tier (cumulative).
    pub fn recovered_views(&self) -> u64 {
        self.recovered_views
    }

    /// Re-homes every proxy hosted on the (dead or draining) broker machine
    /// `broker` to the closest live broker. Write-proxy moves are announced
    /// to the affected replicas, as in [`DynaSoReEngine::maybe_migrate_proxy`].
    fn reassign_proxies(&mut self, broker: MachineId, out: &mut dyn TrafficSink) {
        let Some(new_broker) = self.topology.closest_live_broker(broker) else {
            return; // No live broker anywhere: proxies are unreachable anyway.
        };
        for uidx in 0..self.users.len() {
            if self.users[uidx].read_proxy.machine() == broker {
                self.users[uidx].read_proxy = new_broker;
            }
            if self.users[uidx].write_proxy.machine() == broker {
                self.users[uidx].write_proxy = new_broker;
                for k in 0..self.users[uidx].replicas.len() {
                    let ridx = self.users[uidx].replicas[k];
                    out.record(Message::protocol(
                        new_broker.machine(),
                        self.servers[ridx].machine(),
                    ));
                }
            }
        }
    }

    /// Re-creates the (lost) sole replica of `view` from the persistent
    /// tier. The view data travels from the durable store down through the
    /// top switch — that is the recovery traffic the paper's §3.3 makes
    /// possible by keeping cache servers disposable. Returns `false` when no
    /// live server can take the view (it stays lost until capacity returns).
    ///
    /// Target order: the least-loaded live server of the write proxy's rack
    /// (the recovered master lands near its writer), then the cluster-wide
    /// least-loaded pick, then — because a converged cluster runs its
    /// memory nearly full, so placement is about who can still *evict*, not
    /// who has free slots — every live server in ordinal order until one
    /// can make room.
    fn recover_view(&mut self, view: UserId, out: &mut dyn TrafficSink) -> bool {
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();
        let preferred = self
            .topology
            .rack_of(write_proxy)
            .ok()
            .and_then(|rack| self.least_loaded_server_in(SubtreeId::Rack(rack.index()), &[]))
            .filter(|&i| !self.servers[i].is_full());
        if let Some(target) = preferred {
            if self.place_recovered(view, target, out) {
                return true;
            }
        }
        if let Some(target) = self.least_loaded_server_in(SubtreeId::Root, &[]) {
            if self.place_recovered(view, target, out) {
                return true;
            }
        }
        for target in 0..self.servers.len() {
            if !self.topology.is_live(self.servers[target].machine()) {
                continue;
            }
            if self.place_recovered(view, target, out) {
                return true;
            }
        }
        false
    }

    /// Tries to place the recovered master of `view` on server `target`,
    /// evicting a redundant replica if the server is full. Charges the
    /// persistent-tier transfer on success.
    fn place_recovered(&mut self, view: UserId, target: usize, out: &mut dyn TrafficSink) -> bool {
        if self.servers[target].contains(view) || !self.ensure_space(target, out) {
            return false;
        }
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();
        let target_machine = self.servers[target].machine();
        // The write proxy orchestrates the refill; the view data streams
        // from the persistent tier across the core switch.
        out.record(Message::protocol(write_proxy, target_machine));
        for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
            out.record(Message::persistent_fetch(target_machine));
        }
        let old_len = self.servers[target].len();
        self.servers[target].insert(view);
        self.users[view.as_usize()].replicas.push(target);
        self.update_load_cache(target, old_len);
        self.recovered_views += 1;
        out.trace(TraceEventKind::ReplicaCreated {
            user: view,
            server: target_machine,
            reason: ReplicaChangeReason::Recovery,
        });
        true
    }

    /// Crash-fails a set of machines at once (one machine, or a whole rack
    /// for correlated failures): marks them dead, re-homes proxies off dead
    /// brokers, drops every replica they held, and re-creates lost masters
    /// from the persistent tier. Handling the set as a batch means views
    /// replicated only within a failing rack are recovered once, not moved
    /// from dying machine to dying machine.
    fn take_down(&mut self, machines: &[MachineId], out: &mut dyn TrafficSink) {
        let mut newly_dead: Vec<MachineId> = Vec::new();
        for &machine in machines {
            if self.topology.is_live(machine) && self.topology.set_live(machine, false).is_ok() {
                newly_dead.push(machine);
            }
        }
        if newly_dead.is_empty() {
            return;
        }
        for &machine in &newly_dead {
            if self.topology.is_broker(machine) {
                self.reassign_proxies(machine, out);
            }
        }
        let mut lost: Vec<UserId> = Vec::new();
        for &machine in &newly_dead {
            let Some(sidx) = self.topology.server_ordinal(machine) else {
                continue;
            };
            // The machine is dead: its replicas vanish without eviction
            // protocol traffic.
            let mut views = std::mem::take(&mut self.scratch.views);
            views.clear();
            views.extend(self.servers[sidx].views().map(|(view, _)| view));
            self.servers[sidx].clear();
            for &view in &views {
                let replicas = &mut self.users[view.as_usize()].replicas;
                replicas.retain(|&i| i != sidx);
                if replicas.is_empty() {
                    lost.push(view);
                }
            }
            views.clear();
            self.scratch.views = views;
        }
        // Candidate and threshold caches must exclude the dead machines
        // before recovery picks targets.
        self.rebuild_load_cache();
        self.refresh_threshold_cache();
        out.trace(TraceEventKind::CacheRebuilt);
        lost.sort_unstable();
        for view in lost {
            self.recover_view(view, out);
        }
    }

    /// Brings a set of machines back (empty caches). The returning capacity
    /// immediately becomes the least-loaded landing spot for new replicas,
    /// and any view that stayed lost for lack of capacity is recovered now.
    fn bring_up(&mut self, machines: &[MachineId], out: &mut dyn TrafficSink) {
        let mut changed = false;
        for &machine in machines {
            if !self.topology.contains(machine)
                || self.topology.is_live(machine)
                || self.topology.is_retired(machine)
            {
                continue;
            }
            self.topology
                .set_live(machine, true)
                .expect("machine exists");
            changed = true;
        }
        if !changed {
            return;
        }
        self.rebuild_load_cache();
        self.refresh_threshold_cache();
        out.trace(TraceEventKind::CacheRebuilt);
        for uidx in 0..self.users.len() {
            if self.users[uidx].replicas.is_empty() {
                self.recover_view(UserId::new(uidx as u32), out);
            }
        }
    }

    /// Gracefully empties `machine` before taking it out of service: extra
    /// replicas are dropped, sole replicas are migrated machine-to-machine
    /// (no persistent-tier traffic), proxies are re-homed — then the machine
    /// is marked dead. If a sole replica cannot be placed anywhere (no live
    /// capacity), it falls back to the crash path and is recovered from the
    /// persistent tier when capacity returns.
    fn drain_machine(&mut self, machine: MachineId, out: &mut dyn TrafficSink) {
        if !self.topology.is_live(machine) {
            return;
        }
        self.topology
            .set_live(machine, false)
            .expect("machine exists");
        // Exclude the draining machine from every placement decision first.
        self.rebuild_load_cache();
        self.refresh_threshold_cache();
        out.trace(TraceEventKind::CacheRebuilt);
        if self.topology.is_broker(machine) {
            self.reassign_proxies(machine, out);
        }
        let Some(sidx) = self.topology.server_ordinal(machine) else {
            return;
        };
        let mut cursor = self
            .topology
            .rack_of(machine)
            .map(|r| (r.as_usize() + 1) % self.topology.rack_count())
            .unwrap_or(0);
        self.evacuate_server(sidx, &mut cursor, out);
    }

    /// Evacuates every view stored on server `sidx` (its machine is already
    /// marked dead): redundant replicas are dropped, sole replicas migrate
    /// machine-to-machine. A single cluster-wide least-loaded target would
    /// absorb the whole machine and become the next hot spot, so sole
    /// replicas are dealt round-robin across destination racks through
    /// `rack_cursor` (least-loaded server *within* each rack), falling back
    /// to the cluster-wide pick and then an ordinal eviction scan. Views
    /// that fit nowhere fall back to the crash path. Clears the slab.
    fn evacuate_server(&mut self, sidx: usize, rack_cursor: &mut usize, out: &mut dyn TrafficSink) {
        let racks = self.topology.rack_count();
        let evac_machine = self.servers[sidx].machine();
        let mut views = std::mem::take(&mut self.scratch.views);
        views.clear();
        views.extend(self.servers[sidx].views().map(|(view, _)| view));
        views.sort_unstable();
        for &view in &views {
            if self.users[view.as_usize()].replicas.len() > 1 {
                if self.remove_replica(view, sidx, out) {
                    out.trace(TraceEventKind::ReplicaDropped {
                        user: view,
                        server: evac_machine,
                        reason: ReplicaChangeReason::Evacuation,
                    });
                }
                continue;
            }
            // Sole replica: it must land somewhere before the machine goes.
            let mut migrated_to: Option<usize> = None;
            for step in 0..racks {
                let r = (*rack_cursor + step) % racks;
                let Some(target) = self.least_loaded_server_in(
                    SubtreeId::Rack(r as u32),
                    &self.users[view.as_usize()].replicas,
                ) else {
                    continue;
                };
                if self.create_replica(view, sidx, target, out)
                    && self.remove_replica(view, sidx, out)
                {
                    migrated_to = Some(target);
                    *rack_cursor = (r + 1) % racks;
                    break;
                }
            }
            if migrated_to.is_none() {
                if let Some(target) = self
                    .least_loaded_server_in(SubtreeId::Root, &self.users[view.as_usize()].replicas)
                {
                    if self.create_replica(view, sidx, target, out)
                        && self.remove_replica(view, sidx, out)
                    {
                        migrated_to = Some(target);
                    }
                }
            }
            if migrated_to.is_none() {
                // A draining rack can outsize any single server's evictable
                // stock: walk every live server in ordinal order until one
                // can make room.
                for target in 0..self.servers.len() {
                    if target == sidx || !self.topology.is_live(self.servers[target].machine()) {
                        continue;
                    }
                    if self.create_replica(view, sidx, target, out) {
                        if self.remove_replica(view, sidx, out) {
                            migrated_to = Some(target);
                        }
                        break;
                    }
                }
            }
            match migrated_to {
                Some(target) => out.trace(TraceEventKind::ReplicaMoved {
                    user: view,
                    from: evac_machine,
                    to: self.servers[target].machine(),
                    reason: ReplicaChangeReason::Evacuation,
                }),
                None => {
                    // Genuinely no live capacity anywhere: lose the replica
                    // as a crash would (a later MachineUp/RackUp recovers it
                    // from the persistent tier).
                    self.servers[sidx].remove(view);
                    self.users[view.as_usize()].replicas.retain(|&i| i != sidx);
                    out.trace(TraceEventKind::ReplicaDropped {
                        user: view,
                        server: evac_machine,
                        reason: ReplicaChangeReason::Evacuation,
                    });
                }
            }
        }
        views.clear();
        self.scratch.views = views;
        // The machine is already dead (and thus absent from every candidate
        // set), so clearing its slab needs no cache update.
        self.servers[sidx].clear();
    }

    /// Decommissions a whole rack under load (elastic shrink): every machine
    /// of the rack is marked dead up front — so no evacuated view shuffles
    /// from one dying machine to another — proxies are re-homed, and each
    /// server's views are evacuated with the drain ladder (rack-spread sole
    /// replicas, no persistent-tier traffic in the happy path). The rack is
    /// then retired in the topology, which makes the shrink irreversible.
    fn retire_rack(&mut self, rack: RackId, out: &mut dyn TrafficSink) {
        if rack.as_usize() >= self.topology.rack_count()
            || self.topology.is_rack_retired(rack)
            || self.topology.active_rack_count() <= 1
        {
            return;
        }
        let machines = self
            .topology
            .machines_in_subtree(SubtreeId::Rack(rack.index()));
        for &machine in &machines {
            let _ = self.topology.set_live(machine, false);
        }
        // Placement decisions below must already exclude the dying rack.
        self.rebuild_load_cache();
        self.refresh_threshold_cache();
        out.trace(TraceEventKind::CacheRebuilt);
        for &machine in &machines {
            if self.topology.is_broker(machine) {
                self.reassign_proxies(machine, out);
            }
        }
        let mut cursor = (rack.as_usize() + 1) % self.topology.rack_count();
        for &machine in &machines {
            // Machines already emptied by an earlier drain or crash hold no
            // views; evacuating them is a no-op.
            if let Some(sidx) = self.topology.server_ordinal(machine) {
                self.evacuate_server(sidx, &mut cursor, out);
            }
        }
        self.topology
            .remove_rack(rack)
            .expect("rack exists, is not retired, and is not the last one");
    }

    /// Absorbs a freshly added rack: mirrors the new topology servers with
    /// empty [`ServerState`]s, grows the per-subtree caches and the
    /// transfer tally, and announces the new brokers to the old ones. The
    /// empty servers become the least-loaded candidates everywhere, so
    /// regular replication/migration traffic spreads load onto them.
    fn absorb_new_rack(&mut self, out: &mut dyn TrafficSink) {
        let capacity = self.capacity_per_server();
        let rack = match self.topology.add_rack() {
            Ok(rack) => rack,
            Err(_) => return, // Flat topologies cannot grow by racks.
        };
        for server in &self.topology.servers()[self.servers.len()..] {
            self.servers.push(ServerState::new(
                server.machine(),
                capacity,
                self.config.counter_slots,
                self.users.len(),
            ));
        }
        self.scratch.tally = TransferTally::new(&self.topology);
        self.thresholds
            .rack
            .resize(self.topology.rack_count(), f64::INFINITY);
        self.thresholds
            .inter
            .resize(self.topology.intermediate_count(), f64::INFINITY);
        self.loads
            .rack
            .resize(self.topology.rack_count(), CandidateSet::default());
        self.loads
            .inter
            .resize(self.topology.intermediate_count(), CandidateSet::default());
        self.rebuild_load_cache();
        self.refresh_threshold_cache();
        out.trace(TraceEventKind::CacheRebuilt);
        // Routing-table propagation: the new rack's broker introduces itself
        // to every existing broker.
        if let Some(new_broker) = self.topology.first_broker_in_rack(rack) {
            for broker in self.topology.brokers() {
                if broker.machine() != new_broker.machine() {
                    out.record(Message::protocol(new_broker.machine(), broker.machine()));
                }
            }
        }
    }

    /// Background eviction sweep for one server (§3.2, *Eviction of views*):
    /// first drop replicas with negative utility, then, if occupancy still
    /// exceeds the threshold, evict the least useful evictable replicas
    /// until the target occupancy is reached.
    fn eviction_sweep(&mut self, sidx: usize, out: &mut dyn TrafficSink) {
        // Drop negative-utility replicas. The victim list reuses a scratch
        // buffer and is sorted by id so removal order matches the former
        // ascending-UserId storage iteration.
        let mut negative = std::mem::take(&mut self.scratch.views);
        negative.clear();
        for (view, _) in self.servers[sidx].views() {
            if self.users[view.as_usize()].replicas.len() > 1 && self.utility_of(view, sidx) < 0.0 {
                negative.push(view);
            }
        }
        negative.sort_unstable();
        for &view in &negative {
            if self.remove_replica(view, sidx, out) {
                out.trace(TraceEventKind::ReplicaDropped {
                    user: view,
                    server: self.servers[sidx].machine(),
                    reason: ReplicaChangeReason::Eviction,
                });
            }
        }
        negative.clear();
        self.scratch.views = negative;

        if self.servers[sidx].occupancy() <= self.config.eviction_threshold {
            return;
        }
        // Evict lowest-utility replicas until the target occupancy.
        loop {
            if self.servers[sidx].occupancy() <= self.config.eviction_target {
                break;
            }
            match self.eviction_victim(sidx) {
                Some(view) => {
                    if !self.remove_replica(view, sidx, out) {
                        break;
                    }
                    out.trace(TraceEventKind::ReplicaDropped {
                        user: view,
                        server: self.servers[sidx].machine(),
                        reason: ReplicaChangeReason::Eviction,
                    });
                }
                None => break,
            }
        }
    }
}

/// The per-worker loop of [`DynaSoReEngine::handle_write_batch`]: executes
/// `writes` against one disjoint shard of the dense server slab (`servers`
/// covers dense indices `base..base + servers.len()`), mirroring
/// `handle_write` statement for statement. Workers cannot touch the shared
/// user table, so write-proxy migrations are returned as
/// `(user index, new broker)` decisions — applied by the caller after the
/// join — and looked up locally (newest first) so later writes of the same
/// user observe them, exactly as the serial path would.
fn run_write_shard(
    topology: &Topology,
    users: &[UserState],
    base: usize,
    servers: &mut [ServerState],
    writes: &[(UserId, SimTime)],
    sink: &mut (dyn TrafficSink + Send),
) -> Vec<(u32, BrokerId)> {
    let mut tally = TransferTally::new(topology);
    let mut migrations: Vec<(u32, BrokerId)> = Vec::new();
    for &(user, time) in writes {
        sink.set_time(time);
        let state = &users[user.as_usize()];
        let mut proxy = state.write_proxy;
        // Proxy migrations are rare, so the newest-first scan for an
        // earlier in-batch migration of this user is effectively O(1).
        for &(uidx, broker) in migrations.iter().rev() {
            if uidx as usize == user.as_usize() {
                proxy = broker;
                break;
            }
        }
        let write_proxy = proxy.machine();
        tally.clear();
        for &ridx in &state.replicas {
            let server = &mut servers[ridx - base];
            let machine = server.machine();
            sink.record(Message::application(write_proxy, machine));
            tally.add(machine, 1);
            if let Some(stats) = server.stats_mut(user) {
                stats.record_write();
            }
        }
        if let Some(best) = optimal_proxy_broker(topology, &mut tally) {
            if best != proxy {
                for &ridx in &state.replicas {
                    sink.record(Message::protocol(
                        best.machine(),
                        servers[ridx - base].machine(),
                    ));
                }
                migrations.push((user.index(), best));
            }
        }
    }
    migrations
}

impl PlacementEngine for DynaSoReEngine {
    fn name(&self) -> &str {
        &self.name
    }

    /// Steady-state reads perform zero heap allocations: replica routing
    /// scans the (borrowed) replica index list, transfer bookkeeping uses
    /// the reusable dense tally, statistics updates hit existing counters,
    /// and messages stream straight into the sink.
    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        if user.as_usize() >= self.users.len() {
            return;
        }
        let broker = self.users[user.as_usize()].read_proxy.machine();
        self.scratch.tally.clear();

        for &target in targets {
            if target.as_usize() >= self.users.len() {
                continue;
            }
            let Some((sidx, server_machine)) = self.closest_replica_of(target, broker) else {
                // Only possible while a lost master awaits recovery capacity.
                self.unreachable_reads += 1;
                continue;
            };
            // Request and answer.
            out.record(Message::application(broker, server_machine));
            out.record(Message::application(server_machine, broker));
            self.scratch.tally.add(server_machine, 1);

            let origin = self.topology.access_origin(server_machine, broker);
            if let Some(stats) = self.servers[sidx].stats_mut(target) {
                stats.record_read(origin);
            }
            // "Upon receiving a request for a view, a server updates its
            // access statistics and evaluates the possibility of replicating
            // it" (§3.2).
            self.evaluate_replica(target, sidx, out);
        }

        self.maybe_migrate_proxy(user, false, out);
    }

    /// Steady-state writes perform zero heap allocations: the replica list
    /// is iterated by index and the transfer tally is reused.
    fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
        if user.as_usize() >= self.users.len() {
            return;
        }
        let write_proxy = self.users[user.as_usize()].write_proxy.machine();
        self.scratch.tally.clear();
        for k in 0..self.users[user.as_usize()].replicas.len() {
            let ridx = self.users[user.as_usize()].replicas[k];
            let machine = self.servers[ridx].machine();
            out.record(Message::application(write_proxy, machine));
            self.scratch.tally.add(machine, 1);
            if let Some(stats) = self.servers[ridx].stats_mut(user) {
                stats.record_write();
            }
        }
        self.maybe_migrate_proxy(user, true, out);
    }

    /// Executes a write batch across rack-sharded worker threads. The dense
    /// server slab is split at rack boundaries into one disjoint `&mut`
    /// slice per worker (`split_at_mut` — no locks, no unsafe), each write
    /// whose replicas all live inside one shard runs on that shard's worker,
    /// and the rest replay serially after the join. Per-request proxy
    /// placement uses a worker-local tally and the pure
    /// [`optimal_proxy_broker`], so every decision — and therefore the
    /// engine state and per-request message multiset — is byte-identical to
    /// the serial path regardless of worker count.
    fn handle_write_batch(
        &mut self,
        writes: &[(UserId, SimTime)],
        sinks: &mut [&mut (dyn TrafficSink + Send)],
    ) -> bool {
        if writes.len() < Self::MIN_PARALLEL_BATCH || sinks.len() < 2 {
            return false;
        }
        let Some(plan) = self.shard_plan(sinks.len()) else {
            return false;
        };
        let shards = plan.len() - 1;
        let mut assigned: Vec<Vec<(UserId, SimTime)>> = vec![Vec::new(); shards];
        let mut leftover: Vec<(UserId, SimTime)> = Vec::new();
        for &(user, time) in writes {
            match self.shard_of_write(user, &plan) {
                Some(s) => assigned[s].push((user, time)),
                None => leftover.push((user, time)),
            }
        }
        let topology = &self.topology;
        let users = &self.users;
        let mut migrations: Vec<Vec<(u32, BrokerId)>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let mut rest: &mut [ServerState] = &mut self.servers;
            let mut offset = 0usize;
            let mut sink_slots = sinks.iter_mut();
            for (s, batch) in assigned.iter().enumerate() {
                let (shard, tail) = rest.split_at_mut(plan[s + 1] - offset);
                rest = tail;
                let base = offset;
                offset = plan[s + 1];
                let sink = sink_slots.next().expect("one sink per shard");
                if batch.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    run_write_shard(topology, users, base, shard, batch, &mut **sink)
                }));
            }
            for handle in handles {
                migrations.push(handle.join().expect("write-shard worker panicked"));
            }
        });
        // Worker order, which is shard order: deterministic and
        // worker-count-independent (each user's migrations live in exactly
        // one worker's list, in batch order).
        for (uidx, broker) in migrations.into_iter().flatten() {
            self.users[uidx as usize].write_proxy = broker;
        }
        for &(user, time) in &leftover {
            sinks[0].set_time(time);
            self.handle_write(user, time, &mut *sinks[0]);
        }
        true
    }

    fn on_tick(&mut self, _time: SimTime, out: &mut dyn TrafficSink) {
        // 1. Rotate the access counters of every replica.
        for server in &mut self.servers {
            server.rotate_counters();
        }
        // 2. Refresh admission thresholds: one pass over each server's slab
        // into a reused scratch buffer, then a select on that buffer. Dead
        // servers are empty and excluded from the threshold caches; skip
        // them.
        let fill_target = self.config.admission_fill_target;
        let mut utilities = std::mem::take(&mut self.scratch.utilities);
        for sidx in 0..self.servers.len() {
            if !self.topology.is_live(self.servers[sidx].machine()) {
                continue;
            }
            utilities.clear();
            for slot in 0..self.servers[sidx].slot_count() {
                let Some(view) = self.servers[sidx].view_at(slot) else {
                    continue;
                };
                utilities.push(self.utility_of(view, sidx));
            }
            let capacity = self.servers[sidx].capacity();
            let threshold =
                admission_threshold_from_utilities(&mut utilities, capacity, fill_target);
            self.servers[sidx].set_admission_threshold(threshold);
        }
        self.scratch.utilities = utilities;
        self.refresh_threshold_cache();
        // 3. Background eviction.
        for sidx in 0..self.servers.len() {
            if !self.topology.is_live(self.servers[sidx].machine()) {
                continue;
            }
            self.eviction_sweep(sidx, out);
        }
    }

    fn on_graph_change(
        &mut self,
        _mutation: GraphMutation,
        _time: SimTime,
        _out: &mut dyn TrafficSink,
    ) {
        // "DynaSoRe adapts to the modifications to the social network
        // transparently, without requiring any specific action" (§3.3): the
        // new read targets simply start showing up in the access statistics.
    }

    /// Threads one [`ClusterEvent`] through the engine: crash-failed
    /// machines lose their replicas (masters are re-filled from the
    /// persistent tier, charged to `out`), returning machines rejoin empty,
    /// drained machines migrate their state first, and a new rack is
    /// mirrored with empty server slabs. The per-subtree candidate and
    /// threshold caches are rebuilt against the updated liveness mask.
    fn on_cluster_change(
        &mut self,
        event: ClusterEvent,
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        out.trace(TraceEventKind::ClusterChange { event });
        match event {
            ClusterEvent::MachineDown { machine } => self.take_down(&[machine], out),
            ClusterEvent::MachineUp { machine } => self.bring_up(&[machine], out),
            ClusterEvent::RackDown { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.take_down(&machines, out);
            }
            ClusterEvent::RackUp { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.bring_up(&machines, out);
            }
            ClusterEvent::DrainMachine { machine } => self.drain_machine(machine, out),
            ClusterEvent::AddRack => self.absorb_new_rack(out),
            ClusterEvent::RemoveRack { rack } => self.retire_rack(rack, out),
        }
    }

    fn unreachable_reads(&self) -> u64 {
        self.unreachable_reads
    }

    fn replica_count(&self, user: UserId) -> usize {
        self.users
            .get(user.as_usize())
            .map(|u| u.replicas.len())
            .unwrap_or(0)
    }

    fn memory_usage(&self) -> MemoryUsage {
        // Dead servers contribute neither stored views (their slabs are
        // cleared on failure) nor capacity (their memory is unreachable).
        MemoryUsage {
            used_slots: self
                .servers
                .iter()
                .filter(|s| self.topology.is_live(s.machine()))
                .map(ServerState::len)
                .sum(),
            capacity_slots: self
                .servers
                .iter()
                .filter(|s| self.topology.is_live(s.machine()))
                .map(ServerState::capacity)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn small_world() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 400, 11).unwrap();
        let topology = Topology::tree(2, 2, 5, 1).unwrap(); // 16 servers, 4 brokers
        (graph, topology)
    }

    fn engine_with_extra(extra: u32) -> (DynaSoReEngine, SocialGraph, Topology) {
        let (graph, topology) = small_world();
        let engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(graph.user_count(), extra))
            .initial_placement(InitialPlacement::Random { seed: 1 })
            .build(&graph)
            .unwrap();
        (engine, graph, topology)
    }

    #[test]
    fn builder_validates_inputs() {
        let (graph, topology) = small_world();
        // Missing topology.
        assert!(DynaSoReEngine::builder().build(&graph).is_err());
        // Budget view count mismatch.
        assert!(DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::exact(10))
            .build(&graph)
            .is_err());
        // Degenerate tuning parameter.
        assert!(DynaSoReEngine::builder()
            .topology(topology.clone())
            .eviction_threshold(0.0)
            .build(&graph)
            .is_err());
        // Cluster too small to hold one copy of every view.
        let tiny = Topology::tree(1, 1, 2, 1).unwrap(); // a single server
        let big_graph = SocialGraph::generate(GraphPreset::TwitterLike, 400, 1).unwrap();
        let result = DynaSoReEngine::builder()
            .topology(tiny)
            .budget(MemoryBudget::exact(400))
            .build(&big_graph);
        assert!(result.is_ok() || result.is_err());
    }

    #[test]
    fn initial_state_has_one_replica_per_view() {
        let (engine, graph, _) = engine_with_extra(30);
        for user in graph.users() {
            assert_eq!(engine.replica_count(user), 1, "user {user}");
            assert_eq!(engine.replica_servers(user).len(), 1);
            // Proxies live in the rack of the view.
            let server = engine.replica_servers(user)[0];
            let proxy = engine.read_proxy(user).unwrap();
            assert_eq!(
                engine.topology.rack_of(server).unwrap(),
                engine.topology.rack_of(proxy.machine()).unwrap()
            );
        }
        let usage = engine.memory_usage();
        assert_eq!(usage.used_slots, graph.user_count());
        assert!(usage.capacity_slots >= usage.used_slots);
        assert_eq!(engine.name(), "dynasore-from-random");
        assert!(engine.capacity_per_server() > 0);
    }

    #[test]
    fn remote_reads_trigger_replication_towards_the_readers() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();

        // Pick a view and a reader whose proxy is in a different
        // intermediate sub-tree.
        let view = UserId::new(0);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .expect("some reader lives in another sub-tree");

        assert_eq!(engine.replica_count(view), 1);
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        assert!(
            engine.replica_count(view) >= 2,
            "expected a replica near the remote reader, got {}",
            engine.replica_count(view)
        );
        // The new replica is in the reader's sub-tree.
        let reader_proxy = engine.read_proxy(reader).unwrap().machine();
        let reader_inter = topology.intermediate_of(reader_proxy).unwrap();
        assert!(engine
            .replica_servers(view)
            .iter()
            .any(|&m| topology.intermediate_of(m).unwrap() == reader_inter));
        // Replication generated protocol traffic.
        assert!(out
            .iter()
            .any(|m| m.class == dynasore_types::MessageClass::Protocol));
    }

    #[test]
    fn write_heavy_views_are_not_replicated() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(1);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();

        // Interleave every remote read with many writes: the write cost of a
        // second replica always exceeds the read gain.
        for i in 0..100 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i * 10), &mut out);
            for w in 0..8 {
                engine.handle_write(view, SimTime::from_secs(i * 10 + w), &mut out);
            }
        }
        assert_eq!(
            engine.replica_count(view),
            1,
            "write-dominated view should keep a single replica"
        );
    }

    #[test]
    fn writes_update_every_replica() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(2);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        let replicas = engine.replica_count(view);
        assert!(replicas >= 2);
        out.clear();
        engine.handle_write(view, SimTime::from_secs(10_000), &mut out);
        let app_messages = out
            .iter()
            .filter(|m| m.class == dynasore_types::MessageClass::Application)
            .count();
        assert_eq!(app_messages, replicas);
    }

    #[test]
    fn capacity_is_never_exceeded_and_every_view_keeps_a_replica() {
        let (mut engine, graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        // Hammer the engine with reads from many users and periodic ticks.
        for round in 0..20u64 {
            for u in (0..400u32).step_by(7) {
                let user = UserId::new(u);
                let targets: Vec<UserId> = graph.followees(user).to_vec();
                engine.handle_read(
                    user,
                    &targets,
                    SimTime::from_secs(round * 100 + u as u64),
                    &mut out,
                );
            }
            engine.on_tick(SimTime::from_hours(round + 1), &mut out);
            out.clear();
        }
        for (machine, occupancy) in engine.server_occupancies() {
            assert!(
                occupancy <= 1.0 + 1e-9,
                "server {machine} over capacity: {occupancy}"
            );
        }
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
        }
        let usage = engine.memory_usage();
        assert!(usage.used_slots <= usage.capacity_slots);
    }

    #[test]
    fn idle_replicas_are_evicted_after_the_window_expires() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(3);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        assert!(engine.replica_count(view) >= 2);

        // Keep writing to the view (so extra replicas cost traffic) while
        // nobody reads it any more; rotate the whole statistics window.
        for hour in 0..30u64 {
            engine.handle_write(view, SimTime::from_hours(hour), &mut out);
            engine.on_tick(SimTime::from_hours(hour + 1), &mut out);
        }
        assert_eq!(
            engine.replica_count(view),
            1,
            "useless replicas should have been evicted"
        );
    }

    #[test]
    fn read_proxy_migrates_towards_the_data() {
        let (mut engine, _graph, topology) = engine_with_extra(0);
        let mut out = Vec::new();
        // Pick a reader and a target rack different from the reader's
        // current one, then read only views whose single replica lives in
        // that rack: the read proxy must migrate there.
        let reader = UserId::new(4);
        let before = engine.read_proxy(reader).unwrap();
        let reader_rack = topology.rack_of(before.machine()).unwrap();
        let target_rack = (0..topology.rack_count() as u32)
            .map(dynasore_types::RackId::new)
            .find(|&r| r != reader_rack)
            .unwrap();
        let targets: Vec<UserId> = (0..400u32)
            .map(UserId::new)
            .filter(|&u| u != reader)
            .filter(|&u| {
                let server = engine.replica_servers(u)[0];
                topology.rack_of(server).unwrap() == target_rack
            })
            .take(10)
            .collect();
        assert!(!targets.is_empty(), "no views found in the target rack");
        for i in 0..50 {
            engine.handle_read(reader, &targets, SimTime::from_secs(i), &mut out);
        }
        let after = engine.read_proxy(reader).unwrap();
        assert_eq!(
            topology.rack_of(after.machine()).unwrap(),
            target_rack,
            "proxy (was {before}, now {after}) should sit in the rack holding the data"
        );
    }

    #[test]
    fn unknown_users_are_ignored_gracefully() {
        let (mut engine, _graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        engine.handle_read(
            UserId::new(9_999),
            &[UserId::new(1)],
            SimTime::ZERO,
            &mut out,
        );
        engine.handle_write(UserId::new(9_999), SimTime::ZERO, &mut out);
        engine.handle_read(
            UserId::new(1),
            &[UserId::new(9_999)],
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(engine.replica_count(UserId::new(9_999)), 0);
        // Only the valid read produced messages (none for unknown targets).
        assert!(out.iter().all(|m| !m.is_local()));
    }

    #[test]
    fn load_cache_matches_exact_scan_after_heavy_churn() {
        // Hammer the engine so replicas are created, migrated and evicted,
        // then check the cached least-loaded answers against the exact scan
        // for every subtree and several realistic exclusion lists.
        let (mut engine, graph, topology) = engine_with_extra(30);
        let mut out = Vec::new();
        for round in 0..10u64 {
            for u in (0..400u32).step_by(5) {
                let user = UserId::new(u);
                let targets: Vec<UserId> = graph.followees(user).to_vec();
                engine.handle_read(user, &targets, SimTime::from_secs(round * 60), &mut out);
            }
            engine.on_tick(SimTime::from_hours(round + 1), &mut out);
            out.clear();
        }
        let mut origins: Vec<SubtreeId> = Vec::new();
        for r in 0..topology.rack_count() as u32 {
            origins.push(SubtreeId::Rack(r));
        }
        for i in 0..topology.intermediate_count() as u32 {
            origins.push(SubtreeId::Intermediate(i));
        }
        origins.push(SubtreeId::Root);
        let exclusions: Vec<Vec<usize>> = (0..40)
            .map(|u| engine.users[u].replicas.clone())
            .chain([vec![], vec![0, 1, 2, 3, 4, 5]])
            .collect();
        for &origin in &origins {
            for exclude in &exclusions {
                assert_eq!(
                    engine.least_loaded_server_in(origin, exclude),
                    engine.least_loaded_scan(origin, exclude),
                    "origin {origin}, exclude {exclude:?}"
                );
            }
        }
    }

    /// The incremental top-K update must leave every candidate set exactly
    /// as an exact rescan would build it.
    fn assert_cache_equals_rescan(engine: &DynaSoReEngine, context: &str) {
        for r in 0..engine.topology.rack_count() {
            assert_eq!(
                engine.loads.rack[r],
                engine.build_candidate_set(SubtreeId::Rack(r as u32)),
                "{context}: rack {r} candidate set diverged from rescan"
            );
        }
        for i in 0..engine.topology.intermediate_count() {
            assert_eq!(
                engine.loads.inter[i],
                engine.build_candidate_set(SubtreeId::Intermediate(i as u32)),
                "{context}: intermediate {i} candidate set diverged from rescan"
            );
        }
        assert_eq!(
            engine.loads.root,
            engine.build_candidate_set(SubtreeId::Root),
            "{context}: root candidate set diverged from rescan"
        );
    }

    #[test]
    fn incremental_load_cache_is_equivalent_to_rescan_under_churn() {
        // Tight memory (10% extra) keeps servers near full so the truncated
        // fallback paths, the free-list transitions (full ↔ has-space) and
        // evictions are all exercised; checking after every single request
        // pins each individual ±1 update, not just the end state.
        let (mut engine, graph, _topology) = engine_with_extra(10);
        let mut out = Vec::new();
        assert_cache_equals_rescan(&engine, "initial");
        for round in 0..6u64 {
            for u in (0..400u32).step_by(11) {
                let user = UserId::new(u);
                let targets: Vec<UserId> = graph.followees(user).to_vec();
                engine.handle_read(user, &targets, SimTime::from_secs(round * 60), &mut out);
                assert_cache_equals_rescan(&engine, "after read");
                engine.handle_write(user, SimTime::from_secs(round * 60), &mut out);
            }
            engine.on_tick(SimTime::from_hours(round + 1), &mut out);
            assert_cache_equals_rescan(&engine, "after tick");
            out.clear();
        }
        // Failures and recoveries interleave bulk rebuilds with incremental
        // recovery placements; the invariant must survive the mix.
        let victim = engine.replica_servers(UserId::new(0))[0];
        engine.on_cluster_change(
            ClusterEvent::MachineDown { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert_cache_equals_rescan(&engine, "after machine-down");
        for u in (0..400u32).step_by(17) {
            let user = UserId::new(u);
            let targets: Vec<UserId> = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(9_000), &mut out);
            assert_cache_equals_rescan(&engine, "degraded read");
        }
        engine.on_cluster_change(
            ClusterEvent::MachineUp { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert_cache_equals_rescan(&engine, "after machine-up");
    }

    /// A sink that reports heavy congestion on every rack except one,
    /// mimicking what the simulator's accounting sink exposes when switch
    /// queues are backed up.
    struct CongestedRacksSink {
        messages: Vec<Message>,
        clear_rack: u32,
        delay: Latency,
    }

    impl TrafficSink for CongestedRacksSink {
        fn record(&mut self, message: Message) {
            self.messages.push(message);
        }

        fn congestion(&self, subtree: SubtreeId) -> Latency {
            match subtree {
                SubtreeId::Rack(r) if r == self.clear_rack => Latency::ZERO,
                _ => self.delay,
            }
        }
    }

    #[test]
    fn congestion_penalty_steers_replication_away_from_congested_racks() {
        // Remote reads that would normally trigger replication towards the
        // reader: with every rack congested the penalty outweighs any
        // possible profit, so no replica is created at all.
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let view = UserId::new(0);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .expect("some reader lives in another sub-tree");
        let mut congested = CongestedRacksSink {
            messages: Vec::new(),
            clear_rack: u32::MAX, // every rack congested
            delay: Latency::from_secs(10),
        };
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut congested);
        }
        assert_eq!(
            engine.replica_count(view),
            1,
            "congestion everywhere must suppress replica creation"
        );

        // Control: the identical engine and workload over a congestion-free
        // sink replicates towards the reader (same as the existing
        // remote_reads_trigger_replication test).
        let (mut control, _graph2, _) = engine_with_extra(100);
        let mut out = Vec::new();
        for i in 0..200 {
            control.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        assert!(control.replica_count(view) >= 2);

        // And with exactly one uncongested rack, creation lands there.
        let (mut steered, _graph3, _) = engine_with_extra(100);
        let reader_rack = topology
            .rack_of(steered.read_proxy(reader).unwrap().machine())
            .unwrap();
        let mut one_clear = CongestedRacksSink {
            messages: Vec::new(),
            clear_rack: reader_rack.index(),
            delay: Latency::from_secs(10),
        };
        for i in 0..200 {
            steered.handle_read(reader, &[view], SimTime::from_secs(i), &mut one_clear);
        }
        assert!(steered.replica_count(view) >= 2);
        for machine in steered.replica_servers(view) {
            let rack = topology.rack_of(machine).unwrap();
            assert!(
                rack == reader_rack || machine == view_server,
                "replica landed in congested rack {rack}"
            );
        }
    }

    #[test]
    fn machine_failure_recovers_lost_masters_from_the_persistent_tier() {
        let (mut engine, graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        let victim = engine.replica_servers(UserId::new(0))[0];
        engine.on_cluster_change(
            ClusterEvent::MachineDown { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert!(!engine.topology().is_live(victim));
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
            assert!(
                !engine.replica_servers(user).contains(&victim),
                "replica of {user} still on the dead machine"
            );
        }
        assert!(engine.recovered_views() > 0);
        assert!(
            out.iter().any(|m| m.involves_persistent()),
            "recovery must charge persistent-tier traffic"
        );
        for (machine, occupancy) in engine.server_occupancies() {
            assert!(
                occupancy <= 1.0 + 1e-9,
                "server {machine} over capacity: {occupancy}"
            );
        }
        // Reads keep working against the shrunken cluster.
        out.clear();
        let reader = UserId::new(1);
        let targets: Vec<UserId> = graph.followees(reader).to_vec();
        engine.handle_read(reader, &targets, SimTime::from_secs(1), &mut out);
        assert_eq!(engine.unreachable_reads(), 0);

        // The machine rejoins empty and becomes a replication target again.
        out.clear();
        engine.on_cluster_change(
            ClusterEvent::MachineUp { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert!(engine.topology().is_live(victim));
        let usage = engine.memory_usage();
        assert!(usage.used_slots >= graph.user_count());
    }

    #[test]
    fn broker_failure_rehomes_proxies() {
        let (mut engine, graph, topology) = engine_with_extra(30);
        let mut out = Vec::new();
        // Machine 0 is the broker of rack 0 in the 2x2x5 tree.
        let broker = dynasore_types::MachineId::new(0);
        assert!(topology.is_broker(broker));
        let affected: Vec<UserId> = graph
            .users()
            .filter(|&u| engine.read_proxy(u).unwrap().machine() == broker)
            .collect();
        assert!(!affected.is_empty());
        engine.on_cluster_change(
            ClusterEvent::MachineDown { machine: broker },
            SimTime::ZERO,
            &mut out,
        );
        for &user in &affected {
            let new_proxy = engine.read_proxy(user).unwrap().machine();
            assert_ne!(new_proxy, broker);
            assert!(engine.topology().is_live(new_proxy));
            assert!(topology.is_broker(new_proxy));
        }
        // Reads from an affected user still execute.
        out.clear();
        let reader = affected[0];
        let targets: Vec<UserId> = graph.followees(reader).to_vec();
        engine.handle_read(reader, &targets, SimTime::from_secs(1), &mut out);
        assert_eq!(engine.unreachable_reads(), 0);
    }

    #[test]
    fn rack_failure_is_survived_as_a_batch() {
        let (mut engine, graph, _topology) = engine_with_extra(50);
        let mut out = Vec::new();
        let rack = dynasore_types::RackId::new(0);
        engine.on_cluster_change(ClusterEvent::RackDown { rack }, SimTime::ZERO, &mut out);
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
            for machine in engine.replica_servers(user) {
                assert!(engine.topology().is_live(machine));
                assert_ne!(engine.topology().rack_of(machine).unwrap(), rack);
            }
        }
        assert!(out.iter().any(|m| m.involves_persistent()));
        out.clear();
        engine.on_cluster_change(ClusterEvent::RackUp { rack }, SimTime::ZERO, &mut out);
        assert!(engine.topology().is_live(dynasore_types::MachineId::new(0)));
    }

    #[test]
    fn drain_migrates_without_touching_the_persistent_tier() {
        let (mut engine, graph, _topology) = engine_with_extra(50);
        let mut out = Vec::new();
        let victim = engine.replica_servers(UserId::new(0))[0];
        engine.on_cluster_change(
            ClusterEvent::DrainMachine { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert!(!engine.topology().is_live(victim));
        assert!(
            out.iter().all(|m| !m.involves_persistent()),
            "drain must move state machine-to-machine, not via the durable store"
        );
        assert!(
            out.iter().any(|m| m.from == victim),
            "drained state travels from the draining machine"
        );
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
            assert!(!engine.replica_servers(user).contains(&victim));
        }
        assert_eq!(engine.recovered_views(), 0);
    }

    #[test]
    fn drain_spreads_sole_replicas_across_destination_racks() {
        let (mut engine, _graph, topology) = engine_with_extra(50);
        let victim = engine.replica_servers(UserId::new(0))[0];
        let sidx = topology.server_ordinal(victim).unwrap();
        let on_victim: Vec<UserId> = engine.servers[sidx].views().map(|(v, _)| v).collect();
        let sole: Vec<UserId> = on_victim
            .into_iter()
            .filter(|&v| engine.replica_count(v) == 1)
            .collect();
        assert!(sole.len() > 4, "victim must hold enough sole replicas");
        let mut out = Vec::new();
        engine.on_cluster_change(
            ClusterEvent::DrainMachine { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        // The evacuated sole replicas land on several racks, not on one
        // least-loaded dumping ground.
        let mut dest_racks: Vec<_> = sole
            .iter()
            .map(|&v| {
                let homes = engine.replica_servers(v);
                assert_eq!(homes.len(), 1);
                engine.topology().rack_of(homes[0]).unwrap()
            })
            .collect();
        dest_racks.sort_unstable();
        dest_racks.dedup();
        assert!(
            dest_racks.len() > 1,
            "sole replicas all dumped on one rack: {dest_racks:?}"
        );
        // And no live server becomes a post-drain hot spot.
        let loads: Vec<usize> = engine
            .servers
            .iter()
            .filter(|s| engine.topology().is_live(s.machine()))
            .map(ServerState::len)
            .collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        assert!(
            max <= 1.5 * mean + 1.0,
            "post-drain hot spot: max load {max} vs mean {mean:.1}"
        );
    }

    #[test]
    fn remove_rack_evacuates_and_retires_under_the_engine() {
        let (mut engine, graph, _topology) = engine_with_extra(50);
        let mut out = Vec::new();
        let rack = dynasore_types::RackId::new(0);
        engine.on_cluster_change(ClusterEvent::RemoveRack { rack }, SimTime::ZERO, &mut out);
        assert!(engine.topology().is_rack_retired(rack));
        assert!(
            out.iter().all(|m| !m.involves_persistent()),
            "elastic shrink must move state machine-to-machine"
        );
        assert_eq!(engine.recovered_views(), 0);
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
            for machine in engine.replica_servers(user) {
                assert!(engine.topology().is_live(machine));
                assert_ne!(engine.topology().rack_of(machine).unwrap(), rack);
            }
            let proxy = engine.read_proxy(user).unwrap().machine();
            assert!(engine.topology().is_live(proxy));
        }
        // The retired rack never comes back, even through a RackUp.
        out.clear();
        engine.on_cluster_change(ClusterEvent::RackUp { rack }, SimTime::ZERO, &mut out);
        assert!(!engine.topology().is_live(dynasore_types::MachineId::new(0)));
        // Traffic keeps flowing on the shrunken cluster.
        for i in 0..20u32 {
            let user = UserId::new(i);
            let targets: Vec<UserId> = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(i as u64), &mut out);
            engine.handle_write(user, SimTime::from_secs(i as u64), &mut out);
        }
        assert_eq!(engine.unreachable_reads(), 0);
    }

    #[test]
    fn added_rack_grows_capacity_and_absorbs_replicas() {
        let (mut engine, graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        let before = engine.memory_usage();
        let old_rack_count = engine.topology().rack_count();
        engine.on_cluster_change(ClusterEvent::AddRack, SimTime::ZERO, &mut out);
        assert_eq!(engine.topology().rack_count(), old_rack_count + 1);
        let after = engine.memory_usage();
        assert!(after.capacity_slots > before.capacity_slots);
        assert_eq!(after.used_slots, before.used_slots);
        // The announcement reached the pre-existing brokers.
        assert!(!out.is_empty());
        // The cached least-loaded answers agree with the exact scan over the
        // grown cluster, and the empty servers are the preferred targets.
        let root_pick = engine.least_loaded_server_in(SubtreeId::Root, &[]).unwrap();
        assert_eq!(
            Some(root_pick),
            engine.least_loaded_scan(SubtreeId::Root, &[])
        );
        assert_eq!(engine.servers[root_pick].len(), 0);
        // Traffic keeps flowing after the resize (tally was re-sized too).
        out.clear();
        for i in 0..20u32 {
            let user = UserId::new(i);
            let targets: Vec<UserId> = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(i as u64), &mut out);
            engine.handle_write(user, SimTime::from_secs(i as u64), &mut out);
        }
        engine.on_tick(SimTime::from_hours(1), &mut out);
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1);
        }
    }

    #[test]
    fn flat_topology_is_supported() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 3).unwrap();
        let topology = Topology::flat(10).unwrap();
        let mut engine = DynaSoReEngine::builder()
            .topology(topology)
            .budget(MemoryBudget::with_extra_percent(200, 50))
            .initial_placement(InitialPlacement::Random { seed: 2 })
            .build(&graph)
            .unwrap();
        let mut out = Vec::new();
        for i in 0..50u32 {
            let user = UserId::new(i % 200);
            let targets = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(i as u64), &mut out);
            engine.handle_write(user, SimTime::from_secs(i as u64), &mut out);
        }
        engine.on_tick(SimTime::from_hours(1), &mut out);
        let usage = engine.memory_usage();
        assert!(usage.used_slots >= 200);
    }
}
