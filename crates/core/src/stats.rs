//! Per-replica access statistics.
//!
//! Each replica stores, alongside the view itself, how often it is read from
//! each coarse origin (the sibling racks of its own intermediate switch and
//! the other intermediate switches — see
//! [`Topology::access_origin`](dynasore_topology::Topology::access_origin))
//! and how often it is written (§3.2, *Access statistics*). These rates feed
//! the utility estimation of Algorithm 1.

use dynasore_types::SubtreeId;

use crate::counters::RotatingCounter;

/// Access statistics of one replica of one view on one server.
///
/// Origins are kept in a `Vec` sorted by [`SubtreeId`] — a server observes
/// at most a handful of coarse origins, so a sorted, contiguous array beats
/// a tree map on every operation while iterating in exactly the same
/// (deterministic) order. Recording a read from an already-seen origin
/// touches existing memory only; a *new* origin (a state transition, not
/// steady state) inserts into the array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    window_slots: usize,
    reads_by_origin: Vec<(SubtreeId, RotatingCounter)>,
    writes: RotatingCounter,
}

impl ReplicaStats {
    /// Creates empty statistics using a rotating window of `window_slots`
    /// periods.
    ///
    /// # Panics
    ///
    /// Panics if `window_slots` is zero.
    pub fn new(window_slots: usize) -> Self {
        ReplicaStats {
            window_slots,
            reads_by_origin: Vec::new(),
            writes: RotatingCounter::new(window_slots),
        }
    }

    fn origin_index(&self, origin: SubtreeId) -> Result<usize, usize> {
        self.reads_by_origin
            .binary_search_by_key(&origin, |&(o, _)| o)
    }

    /// Records one read arriving from `origin`.
    pub fn record_read(&mut self, origin: SubtreeId) {
        self.record_reads(origin, 1);
    }

    /// Records `count` reads arriving from `origin` in one go. Used when a
    /// newly created replica inherits the read history of the origins it
    /// takes over from the source replica.
    pub fn record_reads(&mut self, origin: SubtreeId, count: u64) {
        if count == 0 {
            return;
        }
        match self.origin_index(origin) {
            Ok(i) => self.reads_by_origin[i].1.record(count),
            Err(i) => {
                let mut counter = RotatingCounter::new(self.window_slots);
                counter.record(count);
                self.reads_by_origin.insert(i, (origin, counter));
            }
        }
    }

    /// Removes the read history of `origin` and returns how many reads it
    /// held. Used when another replica takes over serving that origin, so
    /// the source replica does not keep proposing new replicas for readers
    /// it no longer serves.
    pub fn take_origin(&mut self, origin: SubtreeId) -> u64 {
        match self.origin_index(origin) {
            Ok(i) => self.reads_by_origin.remove(i).1.total(),
            Err(_) => 0,
        }
    }

    /// Records one write (replica update).
    pub fn record_write(&mut self) {
        self.writes.record(1);
    }

    /// Rotates every counter to the next period.
    pub fn rotate(&mut self) {
        for (_, counter) in &mut self.reads_by_origin {
            counter.rotate();
        }
        self.writes.rotate();
        // Drop origins that have gone completely quiet to keep the list
        // small.
        self.reads_by_origin.retain(|(_, c)| !c.is_idle());
    }

    /// Iterates over `(origin, reads in window)` pairs with a non-zero
    /// count, in [`SubtreeId`] order.
    pub fn reads(&self) -> impl Iterator<Item = (SubtreeId, u64)> + '_ {
        self.reads_by_origin
            .iter()
            .map(|(origin, counter)| (*origin, counter.total()))
            .filter(|&(_, reads)| reads > 0)
    }

    /// Reads in the window coming from one specific origin.
    pub fn reads_from(&self, origin: SubtreeId) -> u64 {
        match self.origin_index(origin) {
            Ok(i) => self.reads_by_origin[i].1.total(),
            Err(_) => 0,
        }
    }

    /// Total reads in the window, over all origins.
    pub fn total_reads(&self) -> u64 {
        self.reads_by_origin.iter().map(|(_, c)| c.total()).sum()
    }

    /// Total writes (replica updates) in the window.
    pub fn total_writes(&self) -> u64 {
        self.writes.total()
    }

    /// Whether the replica saw no traffic at all during the window.
    pub fn is_idle(&self) -> bool {
        self.total_reads() == 0 && self.total_writes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_grouped_by_origin() {
        let mut s = ReplicaStats::new(4);
        s.record_read(SubtreeId::Rack(0));
        s.record_read(SubtreeId::Rack(0));
        s.record_read(SubtreeId::Intermediate(2));
        s.record_write();
        assert_eq!(s.reads_from(SubtreeId::Rack(0)), 2);
        assert_eq!(s.reads_from(SubtreeId::Intermediate(2)), 1);
        assert_eq!(s.reads_from(SubtreeId::Rack(9)), 0);
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.total_writes(), 1);
        assert!(!s.is_idle());
        let mut origins: Vec<_> = s.reads().collect();
        origins.sort();
        assert_eq!(
            origins,
            vec![(SubtreeId::Intermediate(2), 1), (SubtreeId::Rack(0), 2)]
        );
    }

    #[test]
    fn rotation_forgets_old_activity() {
        let mut s = ReplicaStats::new(2);
        s.record_read(SubtreeId::Rack(1));
        s.record_write();
        s.rotate();
        // Still within the window.
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.total_writes(), 1);
        s.rotate();
        // Both slots cleared now.
        assert_eq!(s.total_reads(), 0);
        assert_eq!(s.total_writes(), 0);
        assert!(s.is_idle());
        // Idle origins are pruned from the map.
        assert_eq!(s.reads().count(), 0);
    }

    #[test]
    fn take_origin_moves_history() {
        let mut s = ReplicaStats::new(4);
        s.record_reads(SubtreeId::Rack(3), 5);
        s.record_read(SubtreeId::Intermediate(1));
        assert_eq!(s.take_origin(SubtreeId::Rack(3)), 5);
        assert_eq!(s.take_origin(SubtreeId::Rack(3)), 0);
        assert_eq!(s.total_reads(), 1);
        // Bulk-recording zero reads is a no-op.
        s.record_reads(SubtreeId::Rack(9), 0);
        assert_eq!(s.reads_from(SubtreeId::Rack(9)), 0);
    }

    #[test]
    fn new_stats_are_idle() {
        let s = ReplicaStats::new(24);
        assert!(s.is_idle());
        assert_eq!(s.total_reads(), 0);
        assert_eq!(s.total_writes(), 0);
    }
}
