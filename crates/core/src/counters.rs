//! Rotating access counters.
//!
//! DynaSoRe records per-view access rates with "rotating counters … Each
//! counter is associated to a time period, and servers start updating the
//! following counter at the end of the period. For example, to record the
//! accesses during one day with a rotating period of one hour, we can use 24
//! counters of 1 byte" (§3.2, *Access statistics*). A rotating window makes
//! the statistics forget old behaviour, which is what lets the system react
//! to flash events and traffic changes.

/// A fixed-size ring of per-period counters.
///
/// [`record`](RotatingCounter::record) increments the current period;
/// [`rotate`](RotatingCounter::rotate) moves to the next period, clearing
/// it. [`total`](RotatingCounter::total) sums the whole window.
///
/// # Example
///
/// ```
/// use dynasore_core::RotatingCounter;
///
/// let mut counter = RotatingCounter::new(3);
/// counter.record(2);
/// counter.rotate();
/// counter.record(1);
/// assert_eq!(counter.total(), 3);
/// // After enough rotations old periods fall out of the window.
/// counter.rotate();
/// counter.rotate();
/// counter.rotate();
/// assert_eq!(counter.total(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatingCounter {
    slots: Vec<u64>,
    current: usize,
    /// Running sum of the whole window, maintained on `record`/`rotate` so
    /// `total()` is O(1) — it is read many times per request by the utility
    /// estimation.
    total: u64,
}

impl RotatingCounter {
    /// Creates a counter with `slots` periods (the paper uses 24 one-hour
    /// slots).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a rotating counter needs at least one slot");
        RotatingCounter {
            slots: vec![0; slots],
            current: 0,
            total: 0,
        }
    }

    /// Number of periods in the window.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Adds `count` accesses to the current period.
    pub fn record(&mut self, count: u64) {
        self.slots[self.current] += count;
        self.total += count;
    }

    /// Moves to the next period, clearing it.
    pub fn rotate(&mut self) {
        self.current = (self.current + 1) % self.slots.len();
        self.total -= self.slots[self.current];
        self.slots[self.current] = 0;
    }

    /// Total accesses over the whole window.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Accesses recorded in the current (not yet rotated) period.
    pub fn current_period(&self) -> u64 {
        self.slots[self.current]
    }

    /// Whether the whole window is zero.
    pub fn is_idle(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_in_current_slot() {
        let mut c = RotatingCounter::new(4);
        c.record(3);
        c.record(2);
        assert_eq!(c.current_period(), 5);
        assert_eq!(c.total(), 5);
        assert!(!c.is_idle());
        assert_eq!(c.slot_count(), 4);
    }

    #[test]
    fn rotation_expires_old_slots() {
        let mut c = RotatingCounter::new(3);
        c.record(10);
        for _ in 0..2 {
            c.rotate();
            c.record(1);
        }
        // Window: [10, 1, 1]
        assert_eq!(c.total(), 12);
        c.rotate(); // wraps around, clears the slot that held 10
        assert_eq!(c.total(), 2);
        c.rotate();
        c.rotate();
        c.rotate();
        assert_eq!(c.total(), 0);
        assert!(c.is_idle());
    }

    #[test]
    fn single_slot_counter_resets_on_every_rotation() {
        let mut c = RotatingCounter::new(1);
        c.record(7);
        assert_eq!(c.total(), 7);
        c.rotate();
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        RotatingCounter::new(0);
    }
}
