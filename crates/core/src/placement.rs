//! Computation of the initial view placement (§4.4), shared with the static
//! baseline engines.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dynasore_graph::SocialGraph;
use dynasore_partition::{hierarchical, Partitioner, TreeShape};
use dynasore_topology::{Topology, TopologyKind};
use dynasore_types::{Error, Result};

use crate::config::InitialPlacement;

/// Computes `assignment[user_index] = dense server index` for the requested
/// initial placement.
///
/// This is also used by the static baselines (Random, METIS, hMETIS), which
/// keep the initial assignment for the whole experiment.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the graph is empty, an explicit
/// placement has the wrong length or references a non-existent server, or
/// the partitioner cannot split the graph (fewer users than servers).
pub fn initial_assignment(
    placement: &InitialPlacement,
    graph: &SocialGraph,
    topology: &Topology,
) -> Result<Vec<u32>> {
    let users = graph.user_count();
    let servers = topology.server_count();
    if users == 0 {
        return Err(Error::invalid_config(
            "cannot place views for an empty graph",
        ));
    }
    if servers == 0 {
        return Err(Error::invalid_config("topology has no view servers"));
    }

    match placement {
        InitialPlacement::Random { seed } => {
            // Shuffle users and deal them round-robin over a shuffled server
            // order, which yields a balanced random assignment.
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut user_order: Vec<u32> = (0..users as u32).collect();
            user_order.shuffle(&mut rng);
            let mut server_order: Vec<u32> = (0..servers as u32).collect();
            server_order.shuffle(&mut rng);
            let mut assignment = vec![0u32; users];
            for (i, &u) in user_order.iter().enumerate() {
                assignment[u as usize] = server_order[i % servers];
            }
            Ok(assignment)
        }
        InitialPlacement::Metis { seed } => {
            let partitioning = Partitioner::new(servers).seed(*seed).partition(graph)?;
            // "We rely on the METIS library to generate partitions, and
            // randomly assign each of them to a server" (§4.1).
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
            let mut part_to_server: Vec<u32> = (0..servers as u32).collect();
            part_to_server.shuffle(&mut rng);
            Ok(partitioning
                .assignment()
                .iter()
                .map(|&p| part_to_server[p as usize])
                .collect())
        }
        InitialPlacement::HierarchicalMetis { seed } => match topology.kind() {
            TopologyKind::Flat => {
                // A flat cluster has no hierarchy: hierarchical partitioning
                // degenerates to the flat METIS placement.
                initial_assignment(&InitialPlacement::Metis { seed: *seed }, graph, topology)
            }
            TopologyKind::Tree => {
                let servers_per_rack = servers / topology.rack_count();
                let shape = TreeShape::new(vec![
                    topology.intermediate_count(),
                    topology.racks_per_intermediate(),
                    servers_per_rack,
                ])?;
                let hier = hierarchical(graph, &shape, 0.05, *seed)?;
                let leaves = hier.leaves()?;
                // Leaf index i encodes (intermediate, rack, server-in-rack)
                // in exactly the order `Topology::servers()` lists servers.
                Ok(leaves.assignment().to_vec())
            }
        },
        InitialPlacement::Explicit(assignment) => {
            if assignment.len() != users {
                return Err(Error::invalid_config(format!(
                    "explicit placement has {} entries but the graph has {users} users",
                    assignment.len()
                )));
            }
            if let Some(&bad) = assignment.iter().find(|&&s| s as usize >= servers) {
                return Err(Error::invalid_config(format!(
                    "explicit placement references server {bad} but only {servers} servers exist"
                )));
            }
            Ok(assignment.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 600, 1).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap(); // 12 servers
        (graph, topology)
    }

    #[test]
    fn random_assignment_is_balanced_and_deterministic() {
        let (graph, topology) = setup();
        let a =
            initial_assignment(&InitialPlacement::Random { seed: 3 }, &graph, &topology).unwrap();
        let b =
            initial_assignment(&InitialPlacement::Random { seed: 3 }, &graph, &topology).unwrap();
        assert_eq!(a, b);
        let mut counts = vec![0usize; topology.server_count()];
        for &s in &a {
            counts[s as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "random placement imbalance: {min}..{max}");
    }

    #[test]
    fn metis_assignment_covers_all_servers_and_cuts_fewer_edges() {
        let (graph, topology) = setup();
        let random =
            initial_assignment(&InitialPlacement::Random { seed: 3 }, &graph, &topology).unwrap();
        let metis =
            initial_assignment(&InitialPlacement::Metis { seed: 3 }, &graph, &topology).unwrap();
        assert_eq!(metis.len(), graph.user_count());
        let cut = |assignment: &[u32]| {
            graph
                .edges()
                .filter(|&(u, v)| assignment[u.as_usize()] != assignment[v.as_usize()])
                .count()
        };
        assert!(cut(&metis) < cut(&random));
    }

    #[test]
    fn hmetis_assignment_respects_the_tree() {
        let (graph, topology) = setup();
        let hmetis = initial_assignment(
            &InitialPlacement::HierarchicalMetis { seed: 5 },
            &graph,
            &topology,
        )
        .unwrap();
        let metis =
            initial_assignment(&InitialPlacement::Metis { seed: 5 }, &graph, &topology).unwrap();
        // Count edges separated by the *top switch* (different intermediate
        // sub-trees): hierarchical partitioning should do at least as well.
        let servers = topology.servers().to_vec();
        let inter_of = |srv: u32| {
            topology
                .intermediate_of(servers[srv as usize].machine())
                .unwrap()
        };
        let top_cut = |assignment: &[u32]| {
            graph
                .edges()
                .filter(|&(u, v)| {
                    inter_of(assignment[u.as_usize()]) != inter_of(assignment[v.as_usize()])
                })
                .count()
        };
        assert!(top_cut(&hmetis) <= top_cut(&metis));
    }

    #[test]
    fn hmetis_on_flat_topology_falls_back_to_metis() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 2).unwrap();
        let flat = Topology::flat(10).unwrap();
        let a = initial_assignment(
            &InitialPlacement::HierarchicalMetis { seed: 2 },
            &graph,
            &flat,
        )
        .unwrap();
        let b = initial_assignment(&InitialPlacement::Metis { seed: 2 }, &graph, &flat).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_assignment_is_validated() {
        let (graph, topology) = setup();
        let ok = vec![0u32; graph.user_count()];
        assert!(initial_assignment(&InitialPlacement::Explicit(ok), &graph, &topology).is_ok());
        let wrong_len = vec![0u32; 5];
        assert!(
            initial_assignment(&InitialPlacement::Explicit(wrong_len), &graph, &topology).is_err()
        );
        let bad_server = vec![99u32; graph.user_count()];
        assert!(
            initial_assignment(&InitialPlacement::Explicit(bad_server), &graph, &topology).is_err()
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let empty = SocialGraph::new(0);
        assert!(
            initial_assignment(&InitialPlacement::Random { seed: 1 }, &empty, &topology).is_err()
        );
    }
}
