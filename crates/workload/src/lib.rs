//! Request-trace generators for DynaSoRe experiments.
//!
//! The paper drives its simulator with two kinds of request logs (§4.2):
//!
//! * **Synthetic logs** — per-user read and write activity proportional to
//!   the logarithm of the user's degree (Huberman et al.), roughly four
//!   reads per write (Silberstein et al.), one write per user per day on
//!   average, requests spread evenly over time. Implemented by
//!   [`SyntheticTraceGenerator`].
//! * **Real user traffic** — a two-week sample of Yahoo! News Activity:
//!   2.5 M users, 17 M writes and 9.8 M reads, strongly diurnal. That trace
//!   is proprietary, so [`DiurnalTraceGenerator`] produces a synthetic
//!   stand-in with the same rate variability, write dominance and
//!   degree-rank activity mapping.
//!
//! [`FlashEventPlan`] reproduces the flash-event experiment (§4.6): a user
//! suddenly gains 100 random followers at day 2 and loses them at day 7.
//!
//! All generators are deterministic for a given seed and yield requests in
//! non-decreasing time order, so multi-day traces can be streamed without
//! materialising them in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diurnal;
mod flash;
mod request;
mod sampler;
mod synthetic;

pub use diurnal::{DiurnalConfig, DiurnalTraceGenerator};
pub use flash::{FlashEventPlan, GraphMutation, TimedMutation};
pub use request::Request;
pub use sampler::WeightedSampler;
pub use synthetic::{SyntheticConfig, SyntheticTraceGenerator};
