//! Weighted sampling of users.

use rand::rngs::StdRng;
use rand::Rng;

use dynasore_types::UserId;

/// Samples users proportionally to fixed, non-negative weights using
/// cumulative sums and binary search (`O(log n)` per sample).
///
/// # Example
///
/// ```
/// use dynasore_workload::WeightedSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = WeightedSampler::new(vec![0.0, 3.0, 1.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let picks: Vec<u32> = (0..100).map(|_| sampler.sample(&mut rng).index()).collect();
/// // User 0 has zero weight and can never be drawn.
/// assert!(picks.iter().all(|&u| u != 0));
/// ```
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedSampler {
    /// Builds a sampler over users `0..weights.len()`.
    ///
    /// Returns `None` if the weights are empty, contain a negative or
    /// non-finite value, or all sum to zero.
    pub fn new(weights: Vec<f64>) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for w in &weights {
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(WeightedSampler { cumulative, total })
    }

    /// Number of users covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler covers no users (never true for a constructed
    /// sampler).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draws one user.
    pub fn sample(&self, rng: &mut StdRng) -> UserId {
        let x: f64 = rng.gen_range(0.0..self.total);
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        UserId::new(idx.min(self.cumulative.len() - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_weights() {
        assert!(WeightedSampler::new(vec![]).is_none());
        assert!(WeightedSampler::new(vec![0.0, 0.0]).is_none());
        assert!(WeightedSampler::new(vec![1.0, -1.0]).is_none());
        assert!(WeightedSampler::new(vec![f64::NAN]).is_none());
        assert!(WeightedSampler::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn accessors() {
        let s = WeightedSampler::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!((s.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_roughly_follows_weights() {
        let s = WeightedSampler::new(vec![1.0, 9.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng).index() == 1).count();
        let fraction = ones as f64 / n as f64;
        assert!(
            (fraction - 0.9).abs() < 0.03,
            "expected ~0.9, got {fraction}"
        );
    }

    #[test]
    fn zero_weight_users_are_never_drawn() {
        let s = WeightedSampler::new(vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u = s.sample(&mut rng).index();
            assert!(u == 1 || u == 3);
        }
    }
}
