//! Synthetic request log following the paper's recipe (§4.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynasore_graph::{metrics::log_activity_weight, SocialGraph};
use dynasore_types::{Error, Result, SimTime, DAY_SECS};

use crate::request::Request;
use crate::sampler::WeightedSampler;

/// Parameters of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Duration of the trace in days.
    pub days: u64,
    /// Average number of writes issued per user per day (the paper assumes
    /// 1).
    pub writes_per_user_per_day: f64,
    /// Global ratio of reads to writes (the paper assumes 4).
    pub read_write_ratio: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            days: 1,
            writes_per_user_per_day: 1.0,
            read_write_ratio: 4.0,
        }
    }
}

impl SyntheticConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any parameter is non-positive.
    pub fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(Error::invalid_config("trace must last at least one day"));
        }
        if self.writes_per_user_per_day <= 0.0 {
            return Err(Error::invalid_config(
                "writes_per_user_per_day must be positive",
            ));
        }
        if self.read_write_ratio <= 0.0 {
            return Err(Error::invalid_config("read_write_ratio must be positive"));
        }
        Ok(())
    }
}

/// Streaming generator of the synthetic request log.
///
/// Requests are spread evenly over the trace duration; each request is a
/// write with probability `1 / (1 + read_write_ratio)`, otherwise a read.
/// Writers are drawn proportionally to `ln(1 + in-degree)` (popular users
/// post more), readers proportionally to `ln(1 + out-degree)` (users who
/// follow many people consult their feed more often), following the
/// log-degree activity model of Huberman et al. adopted by the paper.
///
/// # Example
///
/// ```
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_workload::SyntheticTraceGenerator;
///
/// let g = SocialGraph::generate(GraphPreset::TwitterLike, 200, 1).unwrap();
/// let trace = SyntheticTraceGenerator::paper_defaults(&g, 1, 7).unwrap();
/// let requests: Vec<_> = trace.collect();
/// // About 5 requests per user per day (1 write + 4 reads).
/// assert!(requests.len() > 600 && requests.len() < 1_400);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraceGenerator {
    rng: StdRng,
    read_sampler: WeightedSampler,
    write_sampler: WeightedSampler,
    write_probability: f64,
    total_requests: u64,
    emitted: u64,
    duration_secs: u64,
}

impl SyntheticTraceGenerator {
    /// Creates a generator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// the graph is empty.
    pub fn new(graph: &SocialGraph, config: SyntheticConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let n = graph.user_count();
        if n == 0 {
            return Err(Error::invalid_config(
                "cannot generate traffic for an empty graph",
            ));
        }

        let write_weights: Vec<f64> = graph
            .users()
            .map(|u| log_activity_weight(graph.in_degree(u)).max(0.05))
            .collect();
        let read_weights: Vec<f64> = graph
            .users()
            .map(|u| log_activity_weight(graph.out_degree(u)).max(0.05))
            .collect();
        let write_sampler = WeightedSampler::new(write_weights)
            .ok_or_else(|| Error::invalid_config("degenerate write weights"))?;
        let read_sampler = WeightedSampler::new(read_weights)
            .ok_or_else(|| Error::invalid_config("degenerate read weights"))?;

        let writes_total = config.writes_per_user_per_day * n as f64 * config.days as f64;
        let total_requests = (writes_total * (1.0 + config.read_write_ratio)).round() as u64;
        let write_probability = 1.0 / (1.0 + config.read_write_ratio);

        Ok(SyntheticTraceGenerator {
            rng: StdRng::seed_from_u64(seed),
            read_sampler,
            write_sampler,
            write_probability,
            total_requests: total_requests.max(1),
            emitted: 0,
            duration_secs: config.days * DAY_SECS,
        })
    }

    /// Creates a generator with the paper's default parameters (1 write per
    /// user per day, 4 reads per write) lasting `days` days.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the graph is empty or `days` is
    /// zero.
    pub fn paper_defaults(graph: &SocialGraph, days: u64, seed: u64) -> Result<Self> {
        SyntheticTraceGenerator::new(
            graph,
            SyntheticConfig {
                days,
                ..SyntheticConfig::default()
            },
            seed,
        )
    }

    /// Total number of requests this generator will produce.
    pub fn request_count(&self) -> u64 {
        self.total_requests
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.duration_secs
    }
}

impl Iterator for SyntheticTraceGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.total_requests {
            return None;
        }
        // Requests are evenly distributed over the duration.
        let time_secs = (self.emitted as u128 * self.duration_secs as u128
            / self.total_requests as u128) as u64;
        let time = SimTime::from_secs(time_secs);
        self.emitted += 1;
        let request = if self.rng.gen_bool(self.write_probability) {
            Request::write(time, self.write_sampler.sample(&mut self.rng))
        } else {
            Request::read(time, self.read_sampler.sample(&mut self.rng))
        };
        Some(request)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total_requests - self.emitted) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SyntheticTraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::{Operation, UserId};

    fn graph() -> SocialGraph {
        SocialGraph::generate(GraphPreset::TwitterLike, 300, 5).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SyntheticConfig::default().validate().is_ok());
        assert!(SyntheticConfig {
            days: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticConfig {
            writes_per_user_per_day: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticConfig {
            read_write_ratio: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticTraceGenerator::paper_defaults(&SocialGraph::new(0), 1, 1).is_err());
    }

    #[test]
    fn request_volume_matches_configuration() {
        let g = graph();
        let gen = SyntheticTraceGenerator::paper_defaults(&g, 2, 1).unwrap();
        // 300 users × 1 write/day × 2 days × (1 + 4) = 3000 requests.
        assert_eq!(gen.request_count(), 3_000);
        assert_eq!(gen.len(), 3_000);
        assert_eq!(gen.count(), 3_000);
    }

    #[test]
    fn read_write_ratio_is_respected() {
        let g = graph();
        let gen = SyntheticTraceGenerator::paper_defaults(&g, 4, 2).unwrap();
        let (mut reads, mut writes) = (0u64, 0u64);
        for r in gen {
            match r.op {
                Operation::Read => reads += 1,
                Operation::Write => writes += 1,
            }
        }
        let ratio = reads as f64 / writes as f64;
        assert!((ratio - 4.0).abs() < 0.5, "read/write ratio {ratio}");
    }

    #[test]
    fn requests_are_time_ordered_and_within_duration() {
        let g = graph();
        let gen = SyntheticTraceGenerator::paper_defaults(&g, 1, 3).unwrap();
        let mut last = SimTime::ZERO;
        for r in gen {
            assert!(r.time >= last);
            assert!(r.time.as_secs() < DAY_SECS);
            last = r.time;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a: Vec<_> = SyntheticTraceGenerator::paper_defaults(&g, 1, 9)
            .unwrap()
            .collect();
        let b: Vec<_> = SyntheticTraceGenerator::paper_defaults(&g, 1, 9)
            .unwrap()
            .collect();
        let c: Vec<_> = SyntheticTraceGenerator::paper_defaults(&g, 1, 10)
            .unwrap()
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn active_users_are_weighted_by_degree() {
        // Build a star: user 0 is followed by everyone else.
        let mut g = SocialGraph::new(50);
        for i in 1..50 {
            g.add_edge(UserId::new(i), UserId::new(0));
        }
        let gen = SyntheticTraceGenerator::new(
            &g,
            SyntheticConfig {
                days: 2,
                writes_per_user_per_day: 2.0,
                read_write_ratio: 4.0,
            },
            4,
        )
        .unwrap();
        let mut writes_by_center = 0u64;
        let mut total_writes = 0u64;
        for r in gen {
            if r.op == Operation::Write {
                total_writes += 1;
                if r.user == UserId::new(0) {
                    writes_by_center += 1;
                }
            }
        }
        // The center has in-degree 49 vs 0 for everyone else, so it should
        // produce a clearly disproportionate share of writes (weights:
        // ln(50) ≈ 3.9 vs 0.05 floor).
        let share = writes_by_center as f64 / total_writes as f64;
        assert!(share > 0.3, "center write share {share}");
    }
}
