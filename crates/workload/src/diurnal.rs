//! Diurnal (Yahoo!-News-Activity-like) trace generator.
//!
//! The real trace used in §4.2 is proprietary. Its properties, as reported
//! by the paper, are: 2.5 M users, 17 M writes and 9.8 M reads over two
//! weeks (writes dominate because many reads happen on Facebook and bypass
//! the logging), a pronounced daily activity cycle (Figure 2), and user
//! activity mapped to the Facebook graph by degree rank. This generator
//! reproduces those properties synthetically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynasore_graph::{metrics::log_activity_weight, SocialGraph};
use dynasore_types::{Error, Result, SimTime, DAY_SECS};

use crate::request::Request;
use crate::sampler::WeightedSampler;

/// Parameters of the diurnal trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalConfig {
    /// Duration in days (the paper's sample covers 14 days).
    pub days: u64,
    /// Average number of requests (reads + writes) per user per day.
    /// The paper's sample has (17 M + 9.8 M) / 2.5 M / 14 ≈ 0.77.
    pub events_per_user_per_day: f64,
    /// Fraction of requests that are reads (9.8 / 26.8 ≈ 0.37 in the
    /// paper's sample — writes dominate).
    pub read_fraction: f64,
    /// Ratio between the busiest and the quietest moment of a day. The
    /// activity rate follows a raised cosine with this peak-to-trough ratio.
    pub peak_to_trough: f64,
    /// Relative day-to-day jitter of the total volume (0.1 = ±10%).
    pub daily_jitter: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        DiurnalConfig {
            days: 14,
            events_per_user_per_day: 0.77,
            read_fraction: 9.8 / 26.8,
            peak_to_trough: 3.0,
            daily_jitter: 0.15,
        }
    }
}

impl DiurnalConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any parameter is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(Error::invalid_config("trace must last at least one day"));
        }
        if self.events_per_user_per_day <= 0.0 {
            return Err(Error::invalid_config(
                "events_per_user_per_day must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(Error::invalid_config("read_fraction must be in [0, 1]"));
        }
        if self.peak_to_trough < 1.0 {
            return Err(Error::invalid_config("peak_to_trough must be >= 1"));
        }
        if !(0.0..1.0).contains(&self.daily_jitter) {
            return Err(Error::invalid_config("daily_jitter must be in [0, 1)"));
        }
        Ok(())
    }
}

/// Streaming generator of a diurnal, write-heavy trace standing in for the
/// Yahoo! News Activity log.
///
/// Unlike the uniform synthetic log, request timestamps are drawn from a
/// non-homogeneous process whose intensity follows a day/night cycle, so the
/// per-hour request count reproduces the shape of Figure 2 of the paper.
///
/// # Example
///
/// ```
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_workload::{DiurnalConfig, DiurnalTraceGenerator};
///
/// let g = SocialGraph::generate(GraphPreset::FacebookLike, 300, 2).unwrap();
/// let config = DiurnalConfig { days: 2, ..DiurnalConfig::default() };
/// let trace = DiurnalTraceGenerator::new(&g, config, 5).unwrap();
/// let requests: Vec<_> = trace.collect();
/// assert!(!requests.is_empty());
/// // Writes dominate, as in the Yahoo! News Activity sample.
/// let writes = requests.iter().filter(|r| !r.is_read()).count();
/// assert!(writes * 2 > requests.len());
/// ```
#[derive(Debug, Clone)]
pub struct DiurnalTraceGenerator {
    rng: StdRng,
    sampler: WeightedSampler,
    config: DiurnalConfig,
    /// Precomputed per-day total request counts (jittered).
    daily_requests: Vec<u64>,
    day: usize,
    emitted_today: u64,
    duration_secs: u64,
}

impl DiurnalTraceGenerator {
    /// Creates a generator over `graph` with the given configuration.
    ///
    /// Per-user activity is proportional to `ln(1 + degree)`, mirroring the
    /// paper's mapping of trace users to graph users by degree rank: the
    /// most active trace users are attached to the best-connected graph
    /// users.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// the graph is empty.
    pub fn new(graph: &SocialGraph, config: DiurnalConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        if graph.user_count() == 0 {
            return Err(Error::invalid_config(
                "cannot generate traffic for an empty graph",
            ));
        }
        let weights: Vec<f64> = graph
            .users()
            .map(|u| log_activity_weight(graph.in_degree(u) + graph.out_degree(u)).max(0.05))
            .collect();
        let sampler = WeightedSampler::new(weights)
            .ok_or_else(|| Error::invalid_config("degenerate activity weights"))?;

        let mut rng = StdRng::seed_from_u64(seed);
        let base = config.events_per_user_per_day * graph.user_count() as f64;
        let daily_requests: Vec<u64> = (0..config.days)
            .map(|_| {
                let jitter = 1.0 + rng.gen_range(-config.daily_jitter..=config.daily_jitter);
                (base * jitter).round().max(1.0) as u64
            })
            .collect();

        Ok(DiurnalTraceGenerator {
            rng,
            sampler,
            config,
            daily_requests,
            day: 0,
            emitted_today: 0,
            duration_secs: config.days * DAY_SECS,
        })
    }

    /// Creates a generator with the paper-like defaults (14 days,
    /// write-heavy, diurnal).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the graph is empty.
    pub fn paper_defaults(graph: &SocialGraph, seed: u64) -> Result<Self> {
        DiurnalTraceGenerator::new(graph, DiurnalConfig::default(), seed)
    }

    /// Total number of requests across the whole trace.
    pub fn request_count(&self) -> u64 {
        self.daily_requests.iter().sum()
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.duration_secs
    }

    /// Maps a uniform position `q ∈ [0, 1)` within a day to a second of the
    /// day, following the diurnal intensity profile (inverse-CDF of a raised
    /// cosine). Busier hours receive proportionally more requests.
    fn diurnal_second(&mut self, q: f64) -> u64 {
        // Intensity λ(x) ∝ 1 + a·cos(2π(x - peak)), with `a` derived from the
        // requested peak-to-trough ratio and the peak in the evening (x=0.8).
        let p = self.config.peak_to_trough;
        let a = (p - 1.0) / (p + 1.0);
        // Invert the CDF numerically with a small fixed-point iteration; the
        // CDF is F(x) = x + (a / 2π)·(sin(2π(x - peak)) + sin(2π·peak)).
        let peak = 0.8;
        let two_pi = std::f64::consts::TAU;
        let cdf = |x: f64| x + a / two_pi * ((two_pi * (x - peak)).sin() + (two_pi * peak).sin());
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for _ in 0..30 {
            let mid = (lo + hi) / 2.0;
            if cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        ((lo + hi) / 2.0 * DAY_SECS as f64) as u64
    }
}

impl Iterator for DiurnalTraceGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        while self.day < self.daily_requests.len()
            && self.emitted_today >= self.daily_requests[self.day]
        {
            self.day += 1;
            self.emitted_today = 0;
        }
        if self.day >= self.daily_requests.len() {
            return None;
        }
        let today_total = self.daily_requests[self.day];
        // Position within the day, mapped through the diurnal profile. Using
        // the sequential index keeps output time-ordered.
        let q = (self.emitted_today as f64 + 0.5) / today_total as f64;
        let second_of_day = self.diurnal_second(q);
        let time = SimTime::from_secs(self.day as u64 * DAY_SECS + second_of_day);
        self.emitted_today += 1;

        let user = self.sampler.sample(&mut self.rng);
        let request = if self.rng.gen_bool(self.config.read_fraction) {
            Request::read(time, user)
        } else {
            Request::write(time, user)
        };
        Some(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::HOUR_SECS;

    fn graph() -> SocialGraph {
        SocialGraph::generate(GraphPreset::FacebookLike, 200, 3).unwrap()
    }

    fn short_config(days: u64) -> DiurnalConfig {
        DiurnalConfig {
            days,
            events_per_user_per_day: 2.0,
            ..DiurnalConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(DiurnalConfig::default().validate().is_ok());
        assert!(DiurnalConfig {
            days: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DiurnalConfig {
            events_per_user_per_day: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DiurnalConfig {
            read_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DiurnalConfig {
            peak_to_trough: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DiurnalConfig {
            daily_jitter: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DiurnalTraceGenerator::paper_defaults(&SocialGraph::new(0), 1).is_err());
    }

    #[test]
    fn volume_and_duration_match_config() {
        let g = graph();
        let gen = DiurnalTraceGenerator::new(&g, short_config(3), 1).unwrap();
        let expected = gen.request_count();
        assert_eq!(gen.duration_secs(), 3 * DAY_SECS);
        let requests: Vec<_> = gen.collect();
        assert_eq!(requests.len() as u64, expected);
        // Roughly 200 users × 2 events × 3 days = 1200 (±15% jitter/day).
        assert!(requests.len() > 900 && requests.len() < 1_500);
        assert!(requests.iter().all(|r| r.time.as_secs() < 3 * DAY_SECS));
    }

    #[test]
    fn writes_dominate() {
        let g = graph();
        let gen = DiurnalTraceGenerator::new(&g, short_config(2), 2).unwrap();
        let requests: Vec<_> = gen.collect();
        let writes = requests.iter().filter(|r| !r.is_read()).count();
        let fraction = writes as f64 / requests.len() as f64;
        assert!(
            (fraction - (1.0 - 9.8 / 26.8)).abs() < 0.08,
            "write fraction {fraction}"
        );
    }

    #[test]
    fn requests_are_time_ordered() {
        let g = graph();
        let gen = DiurnalTraceGenerator::new(&g, short_config(2), 3).unwrap();
        let mut last = SimTime::ZERO;
        for r in gen {
            assert!(r.time >= last, "time went backwards");
            last = r.time;
        }
    }

    #[test]
    fn traffic_has_a_daily_cycle() {
        let g = graph();
        let config = DiurnalConfig {
            days: 2,
            events_per_user_per_day: 20.0,
            ..DiurnalConfig::default()
        };
        let gen = DiurnalTraceGenerator::new(&g, config, 4).unwrap();
        let mut hourly = vec![0u64; 48];
        for r in gen {
            hourly[(r.time.as_secs() / HOUR_SECS) as usize] += 1;
        }
        let max = *hourly.iter().max().unwrap();
        let min = *hourly.iter().filter(|&&h| h > 0).min().unwrap();
        assert!(
            max as f64 >= 1.8 * min as f64,
            "expected pronounced diurnal cycle, got max={max} min={min}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a: Vec<_> = DiurnalTraceGenerator::new(&g, short_config(1), 5)
            .unwrap()
            .collect();
        let b: Vec<_> = DiurnalTraceGenerator::new(&g, short_config(1), 5)
            .unwrap()
            .collect();
        assert_eq!(a, b);
    }
}
