//! Flash-event planning (§4.6).
//!
//! The paper's flash-event experiment makes a randomly chosen user suddenly
//! popular: at day 2 of the simulation, 100 random users start following her
//! (and therefore reading her view); at day 7 they all unfollow. DynaSoRe is
//! expected to create extra replicas of the view while it is hot and evict
//! them within a day of the spike ending.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dynasore_graph::SocialGraph;
use dynasore_types::{Error, Result, SimTime, UserId};

// `GraphMutation` lives in `dynasore-types` (the `PlacementEngine` trait
// references it from layer 0); re-exported here because workloads are where
// mutations are planned.
pub use dynasore_types::GraphMutation;

/// A graph mutation scheduled at a specific simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedMutation {
    /// When the mutation takes effect.
    pub time: SimTime,
    /// The mutation itself.
    pub mutation: GraphMutation,
}

/// The plan of one flash event: a target user, the followers she gains, and
/// the interval during which they follow her.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashEventPlan {
    target: UserId,
    new_followers: Vec<UserId>,
    start: SimTime,
    end: SimTime,
}

impl FlashEventPlan {
    /// Plans a flash event for `target`: `follower_count` users chosen
    /// uniformly at random (excluding the target and her existing followers)
    /// follow her at `start` and unfollow at `end`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `end <= start`, the target is not
    /// in the graph, or there are not enough candidate followers.
    pub fn random(
        graph: &SocialGraph,
        target: UserId,
        follower_count: usize,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> Result<Self> {
        if !graph.contains_user(target) {
            return Err(Error::UnknownUser(target));
        }
        if end <= start {
            return Err(Error::invalid_config(
                "flash event must end after it starts",
            ));
        }
        let existing: std::collections::HashSet<UserId> =
            graph.followers(target).iter().copied().collect();
        let mut candidates: Vec<UserId> = graph
            .users()
            .filter(|&u| u != target && !existing.contains(&u))
            .collect();
        if candidates.len() < follower_count {
            return Err(Error::invalid_config(format!(
                "only {} candidate followers available, {follower_count} requested",
                candidates.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        candidates.shuffle(&mut rng);
        candidates.truncate(follower_count);
        candidates.sort_unstable();
        Ok(FlashEventPlan {
            target,
            new_followers: candidates,
            start,
            end,
        })
    }

    /// The paper's configuration: 100 new followers gained at day 2,
    /// removed at day 7 (§4.6).
    ///
    /// # Errors
    ///
    /// See [`FlashEventPlan::random`].
    pub fn paper_defaults(graph: &SocialGraph, target: UserId, seed: u64) -> Result<Self> {
        FlashEventPlan::random(
            graph,
            target,
            100,
            SimTime::from_days(2),
            SimTime::from_days(7),
            seed,
        )
    }

    /// The user who becomes popular.
    pub fn target(&self) -> UserId {
        self.target
    }

    /// The users who temporarily follow the target.
    pub fn new_followers(&self) -> &[UserId] {
        &self.new_followers
    }

    /// When the spike starts.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// When the spike ends.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The timed graph mutations implementing this plan, in time order.
    pub fn mutations(&self) -> Vec<TimedMutation> {
        let mut muts: Vec<TimedMutation> = self
            .new_followers
            .iter()
            .map(|&f| TimedMutation {
                time: self.start,
                mutation: GraphMutation::AddEdge {
                    follower: f,
                    followee: self.target,
                },
            })
            .collect();
        muts.extend(self.new_followers.iter().map(|&f| TimedMutation {
            time: self.end,
            mutation: GraphMutation::RemoveEdge {
                follower: f,
                followee: self.target,
            },
        }));
        muts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn graph() -> SocialGraph {
        SocialGraph::generate(GraphPreset::FacebookLike, 300, 1).unwrap()
    }

    #[test]
    fn plan_selects_distinct_non_follower_users() {
        let g = graph();
        let target = UserId::new(5);
        let plan = FlashEventPlan::paper_defaults(&g, target, 3).unwrap();
        assert_eq!(plan.target(), target);
        assert_eq!(plan.new_followers().len(), 100);
        let existing: std::collections::HashSet<UserId> =
            g.followers(target).iter().copied().collect();
        for &f in plan.new_followers() {
            assert_ne!(f, target);
            assert!(!existing.contains(&f), "{f} already follows the target");
        }
        // No duplicates (sorted + dedup check).
        let mut sorted = plan.new_followers().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn mutations_add_then_remove() {
        let g = graph();
        let plan = FlashEventPlan::random(
            &g,
            UserId::new(1),
            5,
            SimTime::from_days(1),
            SimTime::from_days(2),
            7,
        )
        .unwrap();
        let muts = plan.mutations();
        assert_eq!(muts.len(), 10);
        assert!(muts[..5].iter().all(|m| m.time == SimTime::from_days(1)
            && matches!(m.mutation, GraphMutation::AddEdge { .. })));
        assert!(muts[5..].iter().all(|m| m.time == SimTime::from_days(2)
            && matches!(m.mutation, GraphMutation::RemoveEdge { .. })));
        assert_eq!(plan.start(), SimTime::from_days(1));
        assert_eq!(plan.end(), SimTime::from_days(2));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let g = graph();
        // end before start
        assert!(FlashEventPlan::random(
            &g,
            UserId::new(0),
            5,
            SimTime::from_days(3),
            SimTime::from_days(2),
            1
        )
        .is_err());
        // unknown target
        assert!(FlashEventPlan::paper_defaults(&g, UserId::new(9_999), 1).is_err());
        // too many followers requested
        assert!(FlashEventPlan::random(
            &g,
            UserId::new(0),
            1_000,
            SimTime::ZERO,
            SimTime::from_days(1),
            1
        )
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a = FlashEventPlan::paper_defaults(&g, UserId::new(2), 11).unwrap();
        let b = FlashEventPlan::paper_defaults(&g, UserId::new(2), 11).unwrap();
        let c = FlashEventPlan::paper_defaults(&g, UserId::new(2), 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.new_followers(), c.new_followers());
    }
}
