//! A single request of the trace.

use dynasore_types::{Operation, SimTime, UserId};

/// One user request: who, when, and whether it is a read or a write.
///
/// A read request from user `u` fetches the views of all of `u`'s social
/// connections; a write request updates `u`'s own view (§2.1). The list of
/// connections is *not* part of the request — DynaSoRe receives the list of
/// users to read from the application (§3.3), which in the simulator is
/// looked up in the social graph at execution time so that graph mutations
/// (flash events) take effect immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// When the request is issued.
    pub time: SimTime,
    /// The user issuing the request.
    pub user: UserId,
    /// Read or write.
    pub op: Operation,
}

impl Request {
    /// Creates a read request.
    pub fn read(time: SimTime, user: UserId) -> Self {
        Request {
            time,
            user,
            op: Operation::Read,
        }
    }

    /// Creates a write request.
    pub fn write(time: SimTime, user: UserId) -> Self {
        Request {
            time,
            user,
            op: Operation::Write,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.op == Operation::Read
    }
}

impl std::fmt::Display for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} {}", self.time, self.op, self.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_operation() {
        let r = Request::read(SimTime::from_secs(1), UserId::new(2));
        let w = Request::write(SimTime::from_secs(3), UserId::new(4));
        assert!(r.is_read());
        assert!(!w.is_read());
        assert_eq!(r.user, UserId::new(2));
        assert_eq!(w.time, SimTime::from_secs(3));
    }

    #[test]
    fn display_is_informative() {
        let r = Request::read(SimTime::from_secs(60), UserId::new(2));
        assert_eq!(r.to_string(), "[0d 00:01:00] read u2");
    }
}
