//! The durable backing store.
//!
//! DynaSoRe "relies upon a persistent store that works independently … .
//! Updates to the data are persisted before they are written to DynaSoRe to
//! guarantee that they can be recovered in the presence of faulty DynaSoRe
//! servers" (§2.2). The [`PersistentStore`] trait is that store's interface
//! as the cluster consumes it: writes land here first, cache misses and
//! recovery reads are served from here. Two implementations exist —
//! [`MockPersistentStore`] (an in-memory map, the default for pure
//! simulations) and [`crate::LogStructuredStore`] (the file-backed tier
//! whose recovery reads real bytes).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use dynasore_types::{Event, Result, SimTime, UserId, View};

/// The durable tier as a [`crate::Cluster`] consumes it (the paper's §2.2
/// system of record): every write is persisted here before the caches are
/// told, misses and recovery demand-fill from here, and
/// [`flush`](PersistentStore::flush)/[`sync`](PersistentStore::sync) are the
/// explicit durability points the cluster drives at shutdown.
///
/// Implementations must be shareable across the cluster's server threads
/// (`Send + Sync`).
pub trait PersistentStore: Send + Sync + std::fmt::Debug {
    /// Appends an event with `payload` to `user`'s view and returns the new
    /// version of the view (the paper's write path: the persistent store
    /// generates the new version, then notifies the cache).
    ///
    /// # Errors
    ///
    /// I/O errors from durable implementations; infallible for the mock.
    fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View>;

    /// Fetches the current view of `user`, or an empty view if the user has
    /// never written.
    ///
    /// # Errors
    ///
    /// I/O errors from durable implementations; infallible for the mock.
    fn fetch(&self, user: UserId) -> Result<View>;

    /// Pushes buffered writes towards the operating system. A no-op for
    /// in-memory implementations.
    ///
    /// # Errors
    ///
    /// I/O errors from durable implementations.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Makes every acknowledged write crash-durable (fsync). A no-op for
    /// in-memory implementations.
    ///
    /// # Errors
    ///
    /// I/O errors from durable implementations.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Number of events appended so far.
    fn write_count(&self) -> u64;

    /// Number of fetches served (cache fills and recovery reads).
    fn read_count(&self) -> u64;
}

/// An in-memory stand-in for the persistent store (the system of record).
#[derive(Debug, Default)]
pub struct MockPersistentStore {
    views: RwLock<HashMap<UserId, View>>,
    /// Logical clock used to timestamp events.
    clock: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
}

impl MockPersistentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MockPersistentStore::default()
    }

    /// Appends an event with `payload` to `user`'s view and returns the new
    /// version of the view (the paper's write path: the persistent store
    /// generates the new version, then notifies the cache).
    pub fn append(&self, user: UserId, payload: Vec<u8>) -> View {
        let timestamp = SimTime::from_secs(self.clock.fetch_add(1, Ordering::Relaxed));
        let mut views = self.views.write();
        let view = views.entry(user).or_insert_with(|| View::new(user));
        view.push(Event::new(user, timestamp, payload));
        self.writes.fetch_add(1, Ordering::Relaxed);
        view.clone()
    }

    /// Fetches the current view of `user`, or an empty view if the user has
    /// never written.
    pub fn fetch(&self, user: UserId) -> View {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.views
            .read()
            .get(&user)
            .cloned()
            .unwrap_or_else(|| View::new(user))
    }

    /// Number of events appended so far.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of fetches served (cache fills and recovery reads).
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl PersistentStore for MockPersistentStore {
    fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
        Ok(MockPersistentStore::append(self, user, payload))
    }

    fn fetch(&self, user: UserId) -> Result<View> {
        Ok(MockPersistentStore::fetch(self, user))
    }

    fn write_count(&self) -> u64 {
        MockPersistentStore::write_count(self)
    }

    fn read_count(&self) -> u64 {
        MockPersistentStore::read_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_fetch_round_trips() {
        let store = MockPersistentStore::new();
        let u = UserId::new(3);
        assert!(store.fetch(u).is_empty());
        let v1 = store.append(u, b"a".to_vec());
        let v2 = store.append(u, b"b".to_vec());
        assert_eq!(v1.len(), 1);
        assert_eq!(v2.len(), 2);
        assert!(v2.version() > v1.version());
        let fetched = store.fetch(u);
        assert_eq!(fetched.len(), 2);
        assert_eq!(fetched.latest().unwrap().payload(), b"b");
        assert_eq!(store.write_count(), 2);
        assert!(store.read_count() >= 2);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let store = MockPersistentStore::new();
        let u = UserId::new(1);
        store.append(u, vec![1]);
        store.append(u, vec![2]);
        let view = store.fetch(u);
        let times: Vec<u64> = view.iter().map(|e| e.timestamp().as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
