//! File-backed [`DurableTier`] for simulations.
//!
//! Bridges the simulator's optional durable-tier hook
//! ([`dynasore_sim::Simulation::with_durable_tier`]) to the file-backed
//! stores: every simulated write request appends a fixed-size,
//! deterministically filled payload to the on-disk log, and each recovery
//! replays the log from real bytes. The backend is either a single
//! [`LogStructuredStore`] ([`open`](SimDurableTier::open)) or a
//! [`ShardedLogStore`] ([`open_sharded`](SimDurableTier::open_sharded)),
//! whose per-shard replay stats feed the report's parallel-recovery
//! critical path.

use dynasore_sim::{DurableTier, TierReplay};
use dynasore_types::{Result, SimTime, UserId};

use crate::log::{LogConfig, LogStructuredStore, RecoveryStats};
use crate::sharded::{ShardedConfig, ShardedLogStore};

/// The payload size mirrored per simulated write: the paper's events are
/// tweet-sized (§3.2), so 140 bytes.
pub const SIM_EVENT_BYTES: usize = 140;

/// The store a [`SimDurableTier`] writes through.
#[derive(Debug)]
enum TierBackend {
    Single(LogStructuredStore),
    Sharded(ShardedLogStore),
}

/// A file-backed store driven by a simulation through the [`DurableTier`]
/// hook. Payloads are synthesized deterministically from the writing user
/// and simulated time, keeping byte counts — and therefore
/// [`dynasore_sim::SimReport`]s — reproducible across runs.
#[derive(Debug)]
pub struct SimDurableTier {
    backend: TierBackend,
    /// Bytes appended per shard since open (one slot for a single log) —
    /// tracked here, not read back from the store, so the per-tick lag
    /// samples the observer takes stay deterministic across runs.
    appended_bytes: Vec<u64>,
    /// Bytes covered by the last [`sync`](DurableTier::sync), per shard.
    synced_bytes: Vec<u64>,
}

impl SimDurableTier {
    /// Opens (or creates) a single-log backing store in `dir`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogStructuredStore::open`].
    pub fn open(dir: impl Into<std::path::PathBuf>, config: LogConfig) -> Result<Self> {
        Ok(SimDurableTier {
            backend: TierBackend::Single(LogStructuredStore::open(dir, config)?),
            appended_bytes: vec![0],
            synced_bytes: vec![0],
        })
    }

    /// Opens (or creates) a sharded backing store in `dir`. The
    /// [`flush_interval`](ShardedConfig::flush_interval) is forced to
    /// `None`: a wall-clock flusher would commit batches at
    /// timing-dependent points, splitting the same appends into different
    /// frame counts across runs and breaking the byte-determinism the
    /// simulator's reports rely on. Batches commit only when they fill or
    /// when the simulation syncs — both deterministic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedLogStore::open`].
    pub fn open_sharded(dir: impl Into<std::path::PathBuf>, config: ShardedConfig) -> Result<Self> {
        let config = ShardedConfig {
            flush_interval: None,
            ..config
        };
        let store = ShardedLogStore::open(dir, config)?;
        let shards = store.shard_count();
        Ok(SimDurableTier {
            backend: TierBackend::Sharded(store),
            appended_bytes: vec![0; shards],
            synced_bytes: vec![0; shards],
        })
    }

    /// The backing single-log store (for inspection: bytes on disk, segment
    /// count…); `None` when the tier is sharded.
    pub fn store(&self) -> Option<&LogStructuredStore> {
        match &self.backend {
            TierBackend::Single(store) => Some(store),
            TierBackend::Sharded(_) => None,
        }
    }

    /// The backing sharded store; `None` when the tier is a single log.
    pub fn sharded_store(&self) -> Option<&ShardedLogStore> {
        match &self.backend {
            TierBackend::Single(_) => None,
            TierBackend::Sharded(store) => Some(store),
        }
    }

    /// Total bytes on disk across the backend.
    pub fn bytes_on_disk(&self) -> u64 {
        match &self.backend {
            TierBackend::Single(store) => store.bytes_on_disk(),
            TierBackend::Sharded(store) => store.bytes_on_disk(),
        }
    }

    /// What the last replay measured, aggregated across shards for a
    /// sharded backend.
    pub fn recovery_stats(&self) -> RecoveryStats {
        match &self.backend {
            TierBackend::Single(store) => store.recovery_stats(),
            TierBackend::Sharded(store) => store.recovery_stats().total,
        }
    }
}

impl DurableTier for SimDurableTier {
    fn append(&mut self, user: UserId, time: SimTime) -> Result<()> {
        let fill = (user.index() as u8).wrapping_add(time.as_secs() as u8);
        let payload = vec![fill; SIM_EVENT_BYTES];
        let shard = match &self.backend {
            TierBackend::Single(store) => {
                store.append_version(user, payload)?;
                0
            }
            TierBackend::Sharded(store) => {
                store.append_version(user, payload)?;
                store.shard_index_of(user)
            }
        };
        self.appended_bytes[shard] += SIM_EVENT_BYTES as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        match &self.backend {
            TierBackend::Single(store) => store.sync()?,
            TierBackend::Sharded(store) => store.sync()?,
        }
        self.synced_bytes.copy_from_slice(&self.appended_bytes);
        Ok(())
    }

    fn shard_lags(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.appended_bytes
                .iter()
                .zip(self.synced_bytes.iter())
                .map(|(&a, &s)| a.saturating_sub(s)),
        );
    }

    fn replay(&mut self) -> Result<TierReplay> {
        // reread() commits and syncs before replaying, so afterwards no
        // appended byte is unsynced.
        self.synced_bytes.copy_from_slice(&self.appended_bytes);
        match &self.backend {
            TierBackend::Single(store) => {
                let stats = store.reread()?;
                Ok(TierReplay {
                    bytes_replayed: stats.bytes_replayed,
                    shards: 1,
                    max_shard_bytes: stats.bytes_replayed,
                })
            }
            TierBackend::Sharded(store) => {
                let stats = store.reread()?;
                Ok(TierReplay {
                    bytes_replayed: stats.total.bytes_replayed,
                    shards: stats.per_shard.len(),
                    max_shard_bytes: stats.max_shard_bytes_replayed(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_deterministic_and_replay_reads_bytes() {
        let dir = std::env::temp_dir().join(format!("dynasore-simtier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut tier = SimDurableTier::open(&dir, LogConfig::default()).unwrap();
        for i in 0..20u32 {
            tier.append(UserId::new(i % 4), SimTime::from_secs(i as u64))
                .unwrap();
        }
        tier.sync().unwrap();
        let replay = tier.replay().unwrap();
        assert_eq!(replay.bytes_replayed, tier.bytes_on_disk());
        assert_eq!(replay.shards, 1);
        assert_eq!(replay.max_shard_bytes, replay.bytes_replayed);
        assert_eq!(tier.recovery_stats().records_replayed, 20);
        assert_eq!(tier.store().unwrap().user_count(), 4);
        // Same call sequence in a fresh directory → identical bytes.
        let dir2 = dir.with_extension("b");
        let _ = std::fs::remove_dir_all(&dir2);
        let mut tier2 = SimDurableTier::open(&dir2, LogConfig::default()).unwrap();
        for i in 0..20u32 {
            tier2
                .append(UserId::new(i % 4), SimTime::from_secs(i as u64))
                .unwrap();
        }
        tier2.sync().unwrap();
        assert_eq!(tier2.replay().unwrap(), replay);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn sharded_tier_is_deterministic_and_reports_the_critical_path() {
        let base =
            std::env::temp_dir().join(format!("dynasore-simtier-sharded-{}", std::process::id()));
        let run = |dir: &std::path::Path| {
            let _ = std::fs::remove_dir_all(dir);
            let mut tier = SimDurableTier::open_sharded(
                dir,
                ShardedConfig {
                    shards: 4,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            for i in 0..40u32 {
                tier.append(UserId::new(i % 10), SimTime::from_secs(i as u64))
                    .unwrap();
            }
            tier.sync().unwrap();
            tier.replay().unwrap()
        };
        let a = run(&base);
        let b = run(&base.with_extension("b"));
        assert_eq!(a, b, "sharded tier must be byte-deterministic");
        assert_eq!(a.shards, 4);
        assert!(a.max_shard_bytes <= a.bytes_replayed);
        assert!(a.max_shard_bytes > 0);
        std::fs::remove_dir_all(&base).unwrap();
        std::fs::remove_dir_all(base.with_extension("b")).unwrap();
    }
}
