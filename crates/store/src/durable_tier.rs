//! File-backed [`DurableTier`] for simulations.
//!
//! Bridges the simulator's optional durable-tier hook
//! ([`dynasore_sim::Simulation::with_durable_tier`]) to the
//! [`LogStructuredStore`]: every simulated write request appends a
//! fixed-size, deterministically filled payload to the on-disk log, and
//! each recovery replays the log from real bytes.

use dynasore_sim::DurableTier;
use dynasore_types::{Result, SimTime, UserId};

use crate::log::{LogConfig, LogStructuredStore, RecoveryStats};

/// The payload size mirrored per simulated write: the paper's events are
/// tweet-sized (§3.2), so 140 bytes.
pub const SIM_EVENT_BYTES: usize = 140;

/// A [`LogStructuredStore`] driven by a simulation through the
/// [`DurableTier`] hook. Payloads are synthesized deterministically from the
/// writing user and simulated time, keeping byte counts — and therefore
/// [`dynasore_sim::SimReport`]s — reproducible across runs.
#[derive(Debug)]
pub struct SimDurableTier {
    store: LogStructuredStore,
}

impl SimDurableTier {
    /// Opens (or creates) the backing log store in `dir`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogStructuredStore::open`].
    pub fn open(dir: impl Into<std::path::PathBuf>, config: LogConfig) -> Result<Self> {
        Ok(SimDurableTier {
            store: LogStructuredStore::open(dir, config)?,
        })
    }

    /// The backing store (for inspection: bytes on disk, segment count…).
    pub fn store(&self) -> &LogStructuredStore {
        &self.store
    }

    /// What the last replay measured.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.store.recovery_stats()
    }
}

impl DurableTier for SimDurableTier {
    fn append(&mut self, user: UserId, time: SimTime) -> Result<()> {
        let fill = (user.index() as u8).wrapping_add(time.as_secs() as u8);
        self.store.append(user, vec![fill; SIM_EVENT_BYTES])?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.store.sync()
    }

    fn replay(&mut self) -> Result<u64> {
        Ok(self.store.reread()?.bytes_replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_deterministic_and_replay_reads_bytes() {
        let dir = std::env::temp_dir().join(format!("dynasore-simtier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut tier = SimDurableTier::open(&dir, LogConfig::default()).unwrap();
        for i in 0..20u32 {
            tier.append(UserId::new(i % 4), SimTime::from_secs(i as u64))
                .unwrap();
        }
        tier.sync().unwrap();
        let bytes = tier.replay().unwrap();
        assert_eq!(bytes, tier.store().bytes_on_disk());
        assert_eq!(tier.recovery_stats().records_replayed, 20);
        assert_eq!(tier.store().user_count(), 4);
        // Same call sequence in a fresh directory → identical bytes.
        let dir2 = dir.with_extension("b");
        let _ = std::fs::remove_dir_all(&dir2);
        let mut tier2 = SimDurableTier::open(&dir2, LogConfig::default()).unwrap();
        for i in 0..20u32 {
            tier2
                .append(UserId::new(i % 4), SimTime::from_secs(i as u64))
                .unwrap();
        }
        tier2.sync().unwrap();
        assert_eq!(tier2.replay().unwrap(), bytes);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }
}
