//! A sharded, group-committed durable tier: N independent
//! [`LogStructuredStore`] shards under one root directory.
//!
//! One [`Mutex`]-guarded log serialises every append behind a single active
//! segment file; that lock (and its fsync) is the scaling ceiling of the
//! durable tier. [`ShardedLogStore`] splits the key space across `N`
//! [`LogStructuredStore`] shards — each with its own subdirectory, `LOCK`
//! file, segment chain and group-commit batch — selected by a stable hash of
//! the [`UserId`], so unrelated users never contend on the same lock, batch
//! or fsync, and recovery can replay shards concurrently (reopen wall-clock
//! is the *max* shard replay time, not the sum).
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   MANIFEST          "DYNASHARD1\nshards N\n" — written once, atomically
//!   shard-0000/       a complete LogStructuredStore directory
//!     LOCK
//!     seg-00000000000000000001.log
//!     …
//!   shard-0001/
//!   …
//! ```
//!
//! The shard count is fixed at creation and persisted in `MANIFEST`;
//! reopening with a different count is refused, because the routing hash
//! would send users to shards that do not hold their records. The routing
//! function itself ([`ShardedLogStore::shard_index_of`]) is part of the
//! on-disk format and must never change.
//!
//! # Group commit and the background flusher
//!
//! Every shard runs group commit (see [`crate::log`]): appends are
//! acknowledged into the shard's in-memory batch and written as one frame
//! when the batch fills. In the default configuration the fill-triggered
//! commit only *writes* the frame (`sync_on_commit: false`); the fsync that
//! makes it machine-durable is pipelined onto the background flusher
//! thread, which syncs each shard through a duplicated file handle
//! ([`LogStructuredStore::sync_detached`]) *without* holding the shard
//! lock — so the write path never waits on the disk, and on a single core
//! appends overlap the flush that makes them durable.
//!
//! The bounded [`flush_interval`] caps the ack-to-durable window. Each wake
//! the flusher (a) commits the open batch of any shard that has gone a full
//! interval without committing on its own — busy shards, whose fill trigger
//! commits faster than that, never get their batch split — and (b) fsyncs a
//! shard once it has accumulated [`sync_bytes_threshold`] unsynced bytes or
//! has carried *any* unsynced bytes for [`sync_wake_bound`] wakes. An
//! acknowledged append is therefore machine-durable within a small constant
//! number of intervals (at most `2 + sync_wake_bound`, ~90 ms at the
//! defaults) — or sooner, whenever an explicit
//! [`sync`](ShardedLogStore::sync) intervenes. Under a fast write load the
//! byte threshold fires first, so the fsync count stays proportional to
//! data volume — every fsync forces a journal commit, and a wake bound
//! tight enough to dominate under load would turn the pipelined flusher
//! into hundreds of tiny journal commits per second.
//!
//! [`sync_bytes_threshold`]: ShardedConfig::sync_bytes_threshold
//! [`sync_wake_bound`]: ShardedConfig::sync_wake_bound
//!
//! [`Mutex`]: parking_lot::Mutex
//! [`flush_interval`]: ShardedConfig::flush_interval

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dynasore_types::{Error, Result, TraceEventKind, UserId, View};

use crate::log::{
    CompactionStats, GroupCommitConfig, LogConfig, LogStructuredStore, RecoveryStats,
};
use crate::obs::StoreObs;
use crate::persistent::PersistentStore;

/// The manifest file that pins the shard count of a directory.
const MANIFEST_FILE: &str = "MANIFEST";
/// First line of the manifest; bumped only on incompatible layout changes.
const MANIFEST_MAGIC: &str = "DYNASHARD1";

/// Configuration of a [`ShardedLogStore`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of independent shards. Fixed at creation (persisted in the
    /// manifest); reopening with a different count is refused. Default 8.
    pub shards: usize,
    /// Per-shard log configuration. The default enables group commit with
    /// `sync_on_commit: false`: fill-triggered commits write the frame to
    /// the OS and leave the fsync to the flusher thread's pipelined
    /// [`sync_detached`] cadence, so the write path never blocks on the
    /// disk. Set `sync_on_commit: true` to fsync inline at every fill
    /// instead (stronger per-commit durability, at the write path's
    /// expense); plain per-append writes work too but forfeit the batching
    /// win.
    ///
    /// [`sync_detached`]: LogStructuredStore::sync_detached
    pub log: LogConfig,
    /// Wake period of the background flusher, which bounds the
    /// ack-to-durable window: each wake commits the open batch of any shard
    /// that has gone a full interval without committing on its own (busy
    /// shards, whose fill trigger commits faster, never get their batch
    /// split) and fsyncs shards on the pipelined cadence described in the
    /// [module documentation](self) — at most `2 + sync_wake_bound`
    /// intervals from acknowledgement to machine durability. `None`
    /// disables the flusher: batches then commit only when they fill or on
    /// an explicit [`flush`]/[`sync`]/[`commit_pending`], and nothing
    /// fsyncs behind the caller's back — the right mode for deterministic
    /// tests and simulations. Default 5 ms.
    ///
    /// [`flush`]: ShardedLogStore::flush
    /// [`sync`]: ShardedLogStore::sync
    /// [`commit_pending`]: ShardedLogStore::commit_pending
    pub flush_interval: Option<Duration>,
    /// Unsynced bytes at which the flusher fsyncs a shard without waiting
    /// out [`sync_wake_bound`](Self::sync_wake_bound): batching the disk
    /// flush into ~megabyte chunks keeps the fsync count proportional to
    /// data volume, not wake frequency. Default 1 MiB.
    pub sync_bytes_threshold: u64,
    /// Maximum consecutive flusher wakes a shard may carry unsynced bytes
    /// before it is fsynced regardless of volume — the time half of the
    /// ack-to-durable bound, `(2 + sync_wake_bound) × flush_interval`.
    /// Loose enough by default (16 wakes ≈ 90 ms at the 5 ms interval) that
    /// a busy shard reaches the byte threshold first; tighten it for a
    /// smaller durability window at the cost of more, smaller fsyncs.
    /// Default 16.
    pub sync_wake_bound: u32,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 8,
            log: LogConfig {
                group_commit: Some(GroupCommitConfig {
                    sync_on_commit: false,
                    ..GroupCommitConfig::default()
                }),
                ..LogConfig::default()
            },
            flush_interval: Some(Duration::from_millis(5)),
            sync_bytes_threshold: 1 << 20,
            sync_wake_bound: 16,
        }
    }
}

/// Per-shard and aggregate recovery measurements of a sharded open (or
/// [`reread`](ShardedLogStore::reread)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedRecoveryStats {
    /// Sums across every shard.
    pub total: RecoveryStats,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<RecoveryStats>,
}

impl ShardedRecoveryStats {
    fn from_shards(per_shard: Vec<RecoveryStats>) -> Self {
        let mut total = RecoveryStats::default();
        for s in &per_shard {
            total.bytes_replayed += s.bytes_replayed;
            total.records_replayed += s.records_replayed;
            total.torn_bytes += s.torn_bytes;
            total.segments += s.segments;
        }
        ShardedRecoveryStats { total, per_shard }
    }

    /// Bytes replayed by the slowest shard — the critical path of a
    /// parallel reopen, since shards replay independently.
    pub fn max_shard_bytes_replayed(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.bytes_replayed)
            .max()
            .unwrap_or(0)
    }
}

/// The background flusher: commits idle shards' pending batches and fsyncs
/// accumulated writes on a bounded interval. Stopped (and joined) on drop,
/// before the shards it borrows through the [`Arc`] can be dropped.
#[derive(Debug)]
struct Flusher {
    stop: mpsc::Sender<()>,
    handle: Option<JoinHandle<()>>,
}

/// What the flusher remembers about one shard between wakes.
struct ShardCadence {
    /// Disk bytes at the previous wake; detects shards whose fill trigger
    /// is committing on its own.
    bytes_at_last_wake: u64,
    /// Disk bytes covered by the last fsync this thread issued.
    synced_bytes: u64,
    /// Consecutive wakes this shard has carried unsynced bytes.
    unsynced_wakes: u32,
}

impl Flusher {
    fn start(
        shards: Arc<Vec<LogStructuredStore>>,
        interval: Duration,
        sync_bytes_threshold: u64,
        sync_wake_bound: u32,
        obs: Option<StoreObs>,
    ) -> Result<Flusher> {
        let (stop, wakeup) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("dynasore-flusher".into())
            .spawn(move || {
                let mut cadence: Vec<ShardCadence> = shards
                    .iter()
                    .map(|s| {
                        let bytes = s.bytes_on_disk();
                        ShardCadence {
                            bytes_at_last_wake: bytes,
                            // Whatever was on disk before this instance is
                            // not ours to fsync.
                            synced_bytes: bytes,
                            unsynced_wakes: 0,
                        }
                    })
                    .collect();
                loop {
                    match wakeup.recv_timeout(interval) {
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            for (i, (shard, c)) in shards.iter().zip(cadence.iter_mut()).enumerate()
                            {
                                Self::tend(
                                    shard,
                                    c,
                                    i,
                                    sync_bytes_threshold,
                                    sync_wake_bound,
                                    obs.as_ref(),
                                );
                            }
                        }
                    }
                }
            })?;
        Ok(Flusher {
            stop,
            handle: Some(handle),
        })
    }

    /// One wake's work on one shard. Background errors have no caller to
    /// report to and are swallowed; nothing is lost — unsynced bytes stay
    /// counted and pending records stay pending, so the next wake retries
    /// and the next explicit flush/sync surfaces the failure.
    fn tend(
        shard: &LogStructuredStore,
        c: &mut ShardCadence,
        shard_index: usize,
        sync_bytes_threshold: u64,
        sync_wake_bound: u32,
        obs: Option<&StoreObs>,
    ) {
        // A shard whose byte count moved since the last wake committed on
        // its own within the interval (the fill trigger is doing its job):
        // its open batch is younger than one interval and is left to fill —
        // forcing it out would split a busy shard's batches for no
        // durability gain. A shard that is pending *and* byte-stable for a
        // whole interval is idle and gets its batch written here.
        let bytes = shard.bytes_on_disk();
        if bytes == c.bytes_at_last_wake && shard.pending_records() > 0 {
            let _ = shard.commit_pending();
        }
        c.bytes_at_last_wake = shard.bytes_on_disk();

        // Pipelined durability: fsync through a detached handle — the shard
        // lock is not held while the disk flushes, so appends keep flowing.
        // Sync once the byte threshold accumulates (batching the flush) or
        // once any unsynced bytes have waited out the wake bound (bounding
        // the ack-to-durable window in time).
        let unsynced = c.bytes_at_last_wake.saturating_sub(c.synced_bytes);
        if unsynced == 0 {
            c.unsynced_wakes = 0;
            return;
        }
        c.unsynced_wakes += 1;
        if unsynced >= sync_bytes_threshold || c.unsynced_wakes > sync_wake_bound {
            // The handle is duplicated after the byte count was read, so
            // the fsync covers at least `bytes_at_last_wake` bytes.
            if shard.sync_detached().is_ok() {
                c.synced_bytes = c.bytes_at_last_wake;
                c.unsynced_wakes = 0;
                if let Some(obs) = obs {
                    obs.trace(TraceEventKind::FlusherSync {
                        shard: shard_index as u32,
                        lag_bytes: unsynced,
                    });
                }
            }
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A sharded, group-committed file-backed durable tier: `N` independent
/// [`LogStructuredStore`] shards routed by a stable hash of the [`UserId`].
/// See the [module documentation](self) for the layout and semantics.
///
/// Implements [`PersistentStore`], so [`crate::Cluster::spawn_with_store`]
/// accepts it unchanged.
#[derive(Debug)]
pub struct ShardedLogStore {
    dir: PathBuf,
    config: ShardedConfig,
    // Held only for its Drop. Declared before `shards`: the flusher thread
    // borrows the shards through the Arc and must be joined before the last
    // strong reference can drop (field drop order is declaration order).
    _flusher: Option<Flusher>,
    shards: Arc<Vec<LogStructuredStore>>,
}

/// Subdirectory name of shard `i`.
fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:04}")
}

/// Reads the manifest, returning the pinned shard count, or `None` when the
/// directory has no manifest yet (a fresh directory).
fn read_manifest(dir: &Path) -> Result<Option<usize>> {
    let path = dir.join(MANIFEST_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or_default();
    if magic != MANIFEST_MAGIC {
        return Err(Error::CorruptRecord(format!(
            "{} is not a sharded-store manifest (bad magic {magic:?})",
            path.display()
        )));
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    match shards {
        Some(n) => Ok(Some(n)),
        None => Err(Error::CorruptRecord(format!(
            "{}: malformed shard count line",
            path.display()
        ))),
    }
}

/// Atomically writes the manifest: temp file, fsync, rename, directory
/// fsync — a crash leaves either no manifest or a complete one.
fn write_manifest(dir: &Path, shards: usize) -> Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp)?;
    write!(file, "{MANIFEST_MAGIC}\nshards {shards}\n")?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// The splitmix64 finalizer: a strong 64-bit mix routing users to shards.
/// Part of the on-disk format — changing it strands every existing record
/// on the wrong shard — so it must never change.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardedLogStore {
    /// Opens (or creates) a sharded store rooted at `dir`.
    ///
    /// A fresh directory gets a manifest pinning `config.shards`; an
    /// existing one is validated against it. The shards are opened
    /// concurrently — one replay thread each — so reopen wall-clock tracks
    /// the largest shard, not the sum. Each shard takes its own `LOCK`
    /// (see [`LogStructuredStore::open`]).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a zero shard count, a zero flush
    /// interval, a shard-count/manifest mismatch, or a shard locked by a
    /// live instance; [`Error::CorruptRecord`] for a malformed manifest or
    /// damage in a shard a crash cannot produce; I/O errors.
    pub fn open(dir: impl Into<PathBuf>, config: ShardedConfig) -> Result<Self> {
        Self::open_inner(dir.into(), config, None)
    }

    /// [`open`](ShardedLogStore::open) with a flight-recorder observer
    /// attached: every shard's batch commits, rotations and compactions —
    /// and the background flusher's pipelined fsyncs, with their
    /// lag-in-bytes — emit structured trace events into `obs`. The
    /// observer's per-shard metric families are sized here, so later
    /// updates from the flusher thread never allocate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](ShardedLogStore::open).
    pub fn open_observed(
        dir: impl Into<PathBuf>,
        config: ShardedConfig,
        obs: StoreObs,
    ) -> Result<Self> {
        Self::open_inner(dir.into(), config, Some(obs))
    }

    fn open_inner(dir: PathBuf, config: ShardedConfig, obs: Option<StoreObs>) -> Result<Self> {
        if config.shards == 0 {
            return Err(Error::invalid_config("shard count must be at least 1"));
        }
        if config.flush_interval.is_some_and(|i| i.is_zero()) {
            return Err(Error::invalid_config(
                "flush_interval must be nonzero (use None to disable the flusher)",
            ));
        }
        std::fs::create_dir_all(&dir)?;
        match read_manifest(&dir)? {
            Some(existing) if existing != config.shards => {
                return Err(Error::invalid_config(format!(
                    "{} was created with {existing} shards, cannot reopen with {}: \
                     the routing hash would look for records on the wrong shard",
                    dir.display(),
                    config.shards
                )));
            }
            Some(_) => {}
            None => write_manifest(&dir, config.shards)?,
        }

        let mut slots: Vec<Option<Result<LogStructuredStore>>> =
            (0..config.shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let shard_dir = dir.join(shard_dir_name(i));
                let log = config.log;
                scope.spawn(move || *slot = Some(LogStructuredStore::open(shard_dir, log)));
            }
        });
        let mut shards = Vec::with_capacity(config.shards);
        for slot in slots {
            shards.push(slot.expect("scoped replay thread fills its slot")?);
        }
        if let Some(obs) = &obs {
            obs.ensure_shards(shards.len());
            for shard in &shards {
                shard.set_observer(obs.clone());
            }
        }
        let shards = Arc::new(shards);
        let flusher = match config.flush_interval {
            Some(interval) => Some(Flusher::start(
                Arc::clone(&shards),
                interval,
                config.sync_bytes_threshold,
                config.sync_wake_bound,
                obs,
            )?),
            None => None,
        };
        Ok(ShardedLogStore {
            dir,
            config,
            _flusher: flusher,
            shards,
        })
    }

    /// Non-destructively replays every shard of `dir` into one merged index
    /// — no locks taken, no repairs made — the sharded analogue of
    /// [`LogStructuredStore::read_back`]. The shard count comes from the
    /// manifest, so no configuration is needed.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptRecord`] for a missing or malformed manifest, plus
    /// the per-shard conditions of [`LogStructuredStore::read_back`].
    pub fn read_back(
        dir: impl AsRef<Path>,
    ) -> Result<(BTreeMap<UserId, View>, ShardedRecoveryStats)> {
        let dir = dir.as_ref();
        let shards = read_manifest(dir)?.ok_or_else(|| {
            Error::CorruptRecord(format!("{}: no sharded-store manifest", dir.display()))
        })?;
        let mut index = BTreeMap::new();
        let mut per_shard = Vec::with_capacity(shards);
        for i in 0..shards {
            let (shard_index, stats) = LogStructuredStore::read_back(dir.join(shard_dir_name(i)))?;
            // Shards partition the user space: the merge is disjoint.
            index.extend(shard_index);
            per_shard.push(stats);
        }
        Ok((index, ShardedRecoveryStats::from_shards(per_shard)))
    }

    /// The shard that owns `user`. Stable across restarts and part of the
    /// on-disk format (see [`mix64`]).
    pub fn shard_index_of(&self, user: UserId) -> usize {
        (mix64(u64::from(user.index())) % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, user: UserId) -> &LogStructuredStore {
        &self.shards[self.shard_index_of(user)]
    }

    /// Appends one event to `user`'s shard and returns the updated view.
    /// The append is *acknowledged* (visible to [`fetch`]) immediately;
    /// durability follows the shard's group-commit contract (see
    /// [`crate::log`]).
    ///
    /// [`fetch`]: ShardedLogStore::fetch
    ///
    /// # Errors
    ///
    /// I/O errors from a forced batch commit, and
    /// [`Error::InvalidConfig`] for an oversized payload.
    pub fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
        self.shard_of(user).append(user, payload)
    }

    /// [`append`](ShardedLogStore::append) without cloning the view —
    /// returns only the new version. The hot write path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`append`](ShardedLogStore::append).
    pub fn append_version(&self, user: UserId, payload: Vec<u8>) -> Result<u64> {
        self.shard_of(user).append_version(user, payload)
    }

    /// Fetches the current view of `user` from its shard (empty if never
    /// written).
    pub fn fetch(&self, user: UserId) -> View {
        self.shard_of(user).fetch(user)
    }

    /// Deletes `user`'s view from its shard (durably: a tombstone record).
    ///
    /// # Errors
    ///
    /// I/O errors from the tombstone write.
    pub fn delete(&self, user: UserId) -> Result<()> {
        self.shard_of(user).delete(user)
    }

    /// Commits every shard's pending batch and flushes every shard to the
    /// OS. Fails fast on the first shard error, matching
    /// [`LogStructuredStore::flush`].
    ///
    /// # Errors
    ///
    /// The first I/O error.
    pub fn flush(&self) -> Result<()> {
        for shard in self.shards.iter() {
            shard.flush()?;
        }
        Ok(())
    }

    /// Commits every shard's pending batch, flushes and fsyncs: after this
    /// returns, every acknowledged write on every shard is crash-durable.
    ///
    /// # Errors
    ///
    /// The first I/O error.
    pub fn sync(&self) -> Result<()> {
        for shard in self.shards.iter() {
            shard.sync()?;
        }
        Ok(())
    }

    /// Commits every shard's pending batch (what the background flusher
    /// runs). Returns whether any shard had one.
    ///
    /// # Errors
    ///
    /// The first I/O error.
    pub fn commit_pending(&self) -> Result<bool> {
        let mut any = false;
        for shard in self.shards.iter() {
            any |= shard.commit_pending()?;
        }
        Ok(any)
    }

    /// Compacts every shard (see [`LogStructuredStore::compact`]) and sums
    /// the per-shard measurements.
    ///
    /// # Errors
    ///
    /// The first shard failure; earlier shards stay compacted (each shard's
    /// pass is independently crash-safe).
    pub fn compact(&self) -> Result<CompactionStats> {
        let mut total = CompactionStats::default();
        for shard in self.shards.iter() {
            let s = shard.compact()?;
            total.bytes_before += s.bytes_before;
            total.bytes_after += s.bytes_after;
            total.segments_before += s.segments_before;
            total.segments_after += s.segments_after;
        }
        Ok(total)
    }

    /// Re-replays every shard from disk concurrently (committing pending
    /// batches first) and returns the per-shard measurements — real
    /// recovery bandwidth without a restart.
    ///
    /// # Errors
    ///
    /// The first shard failure.
    pub fn reread(&self) -> Result<ShardedRecoveryStats> {
        let mut slots: Vec<Option<Result<RecoveryStats>>> =
            (0..self.shards.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (shard, slot) in self.shards.iter().zip(slots.iter_mut()) {
                scope.spawn(move || *slot = Some(shard.reread()));
            }
        });
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for slot in slots {
            per_shard.push(slot.expect("scoped reread thread fills its slot")?);
        }
        Ok(ShardedRecoveryStats::from_shards(per_shard))
    }

    /// What the open (or last [`reread`](ShardedLogStore::reread)) replay
    /// measured, per shard and in aggregate.
    pub fn recovery_stats(&self) -> ShardedRecoveryStats {
        ShardedRecoveryStats::from_shards(self.shards.iter().map(|s| s.recovery_stats()).collect())
    }

    /// Number of shards (as pinned in the manifest).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i`, for tests and benchmarks that need
    /// per-shard visibility (e.g. per-shard `bytes_on_disk` boundaries).
    ///
    /// # Panics
    ///
    /// If `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &LogStructuredStore {
        &self.shards[i]
    }

    /// Total segment bytes on disk across shards (committed frames only;
    /// pending batches are not on disk yet).
    pub fn bytes_on_disk(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_on_disk()).sum()
    }

    /// Total segment files across shards.
    pub fn segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.segment_count()).sum()
    }

    /// Live views across shards (shards partition users, so the sum is
    /// exact).
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.user_count()).sum()
    }

    /// Acknowledged-but-uncommitted appends across shards.
    pub fn pending_records(&self) -> u64 {
        self.shards.iter().map(|s| s.pending_records()).sum()
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> ShardedConfig {
        self.config
    }

    /// Events appended across shards.
    pub fn write_count(&self) -> u64 {
        self.shards.iter().map(|s| s.write_count()).sum()
    }

    /// Fetches served across shards.
    pub fn read_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read_count()).sum()
    }
}

impl PersistentStore for ShardedLogStore {
    fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
        ShardedLogStore::append(self, user, payload)
    }

    fn fetch(&self, user: UserId) -> Result<View> {
        Ok(ShardedLogStore::fetch(self, user))
    }

    fn flush(&self) -> Result<()> {
        ShardedLogStore::flush(self)
    }

    fn sync(&self) -> Result<()> {
        ShardedLogStore::sync(self)
    }

    fn write_count(&self) -> u64 {
        ShardedLogStore::write_count(self)
    }

    fn read_count(&self) -> u64 {
        ShardedLogStore::read_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynasore-sharded-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Deterministic config for tests: no background flusher.
    fn no_flusher(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            flush_interval: None,
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn routing_is_stable_and_reasonably_uniform() {
        let dir = temp_dir("routing");
        let store = ShardedLogStore::open(&dir, no_flusher(8)).unwrap();
        // Stability: the documented splitmix64 finalizer, byte for byte.
        for u in [0u32, 1, 7, 1_000, u32::MAX] {
            assert_eq!(
                store.shard_index_of(UserId::new(u)),
                (mix64(u64::from(u)) % 8) as usize
            );
        }
        // Uniformity: sequential user ids must not pile onto few shards.
        let mut counts = [0usize; 8];
        for u in 0..8_000u32 {
            counts[store.shard_index_of(UserId::new(u))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1_300).contains(&c),
                "shard {i} got {c} of 8000 sequential users"
            );
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_fetch_round_trips_across_shards_and_restart() {
        let dir = temp_dir("roundtrip");
        let store = ShardedLogStore::open(&dir, no_flusher(4)).unwrap();
        for u in 0..64u32 {
            for rev in 0..3u32 {
                store
                    .append_version(UserId::new(u), format!("u{u}-r{rev}").into_bytes())
                    .unwrap();
            }
        }
        assert_eq!(store.write_count(), 192);
        assert_eq!(store.user_count(), 64);
        // Acknowledged writes are visible before any commit.
        let v = store.fetch(UserId::new(9));
        assert_eq!(v.len(), 3);
        assert_eq!(v.latest().unwrap().payload(), b"u9-r2");
        store.sync().unwrap();
        drop(store);

        let reopened = ShardedLogStore::open(&dir, no_flusher(4)).unwrap();
        let stats = reopened.recovery_stats();
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(stats.total.torn_bytes, 0);
        assert!(stats.total.bytes_replayed > 0);
        assert!(stats.max_shard_bytes_replayed() <= stats.total.bytes_replayed);
        for u in 0..64u32 {
            let view = reopened.fetch(UserId::new(u));
            assert_eq!(view.len(), 3, "user {u}");
            assert_eq!(view.version(), 3);
        }
        // Every shard holds only the users the router sends to it.
        for i in 0..4 {
            let (index, _) = LogStructuredStore::read_back(dir.join(shard_dir_name(i))).unwrap();
            for user in index.keys() {
                assert_eq!(
                    reopened.shard_index_of(*user),
                    i,
                    "user {user} on shard {i}"
                );
            }
        }
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_pins_the_shard_count() {
        let dir = temp_dir("manifest");
        let store = ShardedLogStore::open(&dir, no_flusher(4)).unwrap();
        store.append_version(UserId::new(1), b"x".to_vec()).unwrap();
        store.sync().unwrap();
        drop(store);
        let err = ShardedLogStore::open(&dir, no_flusher(8));
        assert!(
            matches!(err, Err(Error::InvalidConfig(_))),
            "shard-count mismatch must be refused, got {err:?}"
        );
        // The original count still opens.
        let again = ShardedLogStore::open(&dir, no_flusher(4)).unwrap();
        assert_eq!(again.shard_count(), 4);
        assert_eq!(again.fetch(UserId::new(1)).len(), 1);
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_configs_are_refused() {
        let dir = temp_dir("invalid");
        assert!(matches!(
            ShardedLogStore::open(&dir, no_flusher(0)),
            Err(Error::InvalidConfig(_))
        ));
        let zero_interval = ShardedConfig {
            flush_interval: Some(Duration::ZERO),
            ..ShardedConfig::default()
        };
        assert!(matches!(
            ShardedLogStore::open(&dir, zero_interval),
            Err(Error::InvalidConfig(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_open_conflicts_on_shard_locks() {
        let dir = temp_dir("double-open");
        let store = ShardedLogStore::open(&dir, no_flusher(2)).unwrap();
        let second = ShardedLogStore::open(&dir, no_flusher(2));
        assert!(
            matches!(second, Err(Error::InvalidConfig(_))),
            "live shard locks must refuse a second owner, got {second:?}"
        );
        drop(store);
        // Dropping the first owner releases every shard lock.
        let third = ShardedLogStore::open(&dir, no_flusher(2)).unwrap();
        drop(third);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_flusher_commits_within_the_interval() {
        let dir = temp_dir("flusher");
        let config = ShardedConfig {
            shards: 2,
            flush_interval: Some(Duration::from_millis(2)),
            ..ShardedConfig::default()
        };
        let store = ShardedLogStore::open(&dir, config).unwrap();
        for u in 0..8u32 {
            store
                .append_version(UserId::new(u), vec![u as u8; 16])
                .unwrap();
        }
        // Far below the 4096-record fill trigger, so only the flusher can
        // commit these. Poll (bounded) until the pending count drains.
        let mut drained = false;
        for _ in 0..500 {
            if store.pending_records() == 0 {
                drained = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(drained, "flusher never committed the pending batches");
        assert!(store.bytes_on_disk() > 0);
        drop(store);
        // Everything the flusher committed replays on reopen.
        let (index, stats) = ShardedLogStore::read_back(&dir).unwrap();
        assert_eq!(index.len(), 8);
        assert_eq!(stats.total.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_and_compaction_fan_out() {
        let dir = temp_dir("compact");
        let store = ShardedLogStore::open(&dir, no_flusher(4)).unwrap();
        for u in 0..32u32 {
            for _ in 0..4 {
                store
                    .append_version(UserId::new(u), vec![u as u8; 64])
                    .unwrap();
            }
        }
        for u in 0..8u32 {
            store.delete(UserId::new(u)).unwrap();
        }
        assert_eq!(store.user_count(), 24);
        assert!(store.fetch(UserId::new(3)).is_empty());
        let stats = store.compact().unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "superseded records must shrink the shards, got {stats:?}"
        );
        assert_eq!(store.user_count(), 24);
        let reread = store.reread().unwrap();
        assert_eq!(reread.per_shard.len(), 4);
        assert_eq!(reread.total.torn_bytes, 0);
        assert_eq!(store.user_count(), 24);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
