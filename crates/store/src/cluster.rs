//! The client-facing cluster: broker logic + placement engine + server
//! threads + persistent store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use dynasore_core::{routing::closest_replica, DynaSoReEngine, InitialPlacement};
use dynasore_graph::SocialGraph;
use dynasore_sim::PlacementEngine;
use dynasore_topology::Topology;
use dynasore_types::{Error, Event, MachineId, MemoryBudget, Result, SimTime, UserId, View};

use crate::persistent::MockPersistentStore;
use crate::server::ServerHandle;

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Extra memory percentage available for replication (30% is the
    /// paper's headline configuration).
    pub extra_memory_percent: u32,
    /// Initial placement of views on servers.
    pub placement: InitialPlacement,
    /// Seed for any randomised decisions.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            extra_memory_percent: 30,
            placement: InitialPlacement::Random { seed: 0 },
            seed: 0,
        }
    }
}

/// Runtime counters of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Reads served from a cache server.
    pub cache_hits: u64,
    /// Reads that had to fall back to the persistent store.
    pub cache_misses: u64,
    /// Events appended to the persistent store.
    pub persistent_writes: u64,
    /// Fetches served by the persistent store (misses + recovery).
    pub persistent_reads: u64,
    /// Views currently cached across all servers.
    pub cached_views: usize,
}

/// A running in-memory view store: one thread per cache server, routed by a
/// DynaSoRe placement engine, backed by a mock persistent store.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Cluster {
    topology: Topology,
    graph: SocialGraph,
    engine: Mutex<DynaSoReEngine>,
    servers: Vec<ServerHandle>,
    server_index: HashMap<MachineId, usize>,
    persistent: MockPersistentStore,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cluster {
    /// Spawns the cluster: builds the placement engine for `graph` over
    /// `topology` and starts one thread per view server.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine cannot be built (empty graph,
    /// insufficient capacity, invalid placement).
    pub fn spawn(graph: &SocialGraph, topology: Topology, config: StoreConfig) -> Result<Self> {
        let engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(
                graph.user_count(),
                config.extra_memory_percent,
            ))
            .initial_placement(config.placement.clone())
            .build(graph)?;

        let servers: Vec<ServerHandle> = topology
            .servers()
            .iter()
            .map(|s| ServerHandle::spawn(s.machine()))
            .collect();
        let server_index = servers
            .iter()
            .enumerate()
            .map(|(i, s)| (s.machine, i))
            .collect();

        Ok(Cluster {
            topology,
            graph: graph.clone(),
            engine: Mutex::new(engine),
            servers,
            server_index,
            persistent: MockPersistentStore::new(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs(self.clock.fetch_add(1, Ordering::Relaxed))
    }

    fn check_user(&self, user: UserId) -> Result<()> {
        if self.graph.contains_user(user) {
            Ok(())
        } else {
            Err(Error::UnknownUser(user))
        }
    }

    /// The paper's `Write(u)` operation: persists a new event for `user` and
    /// updates every cached replica of her view.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if the user is not in the social
    /// graph.
    pub fn write(&self, user: UserId, payload: Vec<u8>) -> Result<()> {
        self.check_user(user)?;
        // 1. The persistent store generates the new version of the view.
        let view = self.persistent.append(user, payload);
        // 2. The write proxy updates the placement statistics and pushes the
        //    new version to every replica (§3.3).
        let replicas = {
            let mut engine = self.engine.lock();
            let mut messages = Vec::new();
            engine.handle_write(user, self.now(), &mut messages);
            engine.replica_servers(user)
        };
        for machine in replicas.iter() {
            if let Some(&idx) = self.server_index.get(machine) {
                self.servers[idx].put(user, view.clone());
            }
        }
        // Cached copies on servers the placement engine no longer lists as
        // replicas are stale replicas that were evicted or migrated away;
        // drop them so the cache mirrors the placement.
        for server in &self.servers {
            if !replicas.contains(&server.machine) && server.get(user).is_some() {
                server.evict(user);
            }
        }
        Ok(())
    }

    /// The paper's `Read(u, L)` operation: returns the views of every user
    /// in `targets`, served from the cache and demand-filled from the
    /// persistent store on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if `user` is not in the social graph
    /// (unknown *targets* are skipped, mirroring a cache that simply has
    /// nothing for them).
    pub fn read(&self, user: UserId, targets: &[UserId]) -> Result<Vec<View>> {
        self.check_user(user)?;
        // Update statistics and (possibly) placement, then capture routing
        // decisions while holding the engine lock.
        let routed: Vec<(UserId, Option<MachineId>)> = {
            let mut engine = self.engine.lock();
            let mut messages = Vec::new();
            engine.handle_read(user, targets, self.now(), &mut messages);
            let proxy = engine
                .read_proxy(user)
                .map(|b| b.machine())
                .unwrap_or_else(|| self.topology.brokers()[0].machine());
            targets
                .iter()
                .filter(|t| self.graph.contains_user(**t))
                .map(|&t| {
                    let replicas = engine.replica_servers(t);
                    (t, closest_replica(&self.topology, proxy, &replicas))
                })
                .collect()
        };

        let mut views = Vec::with_capacity(routed.len());
        for (target, server) in routed {
            let Some(machine) = server else { continue };
            let Some(&idx) = self.server_index.get(&machine) else {
                continue;
            };
            match self.servers[idx].get(target) {
                Some(view) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    views.push(view);
                }
                None => {
                    // Cache miss: demand-fill from the persistent store.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let view = self.persistent.fetch(target);
                    self.servers[idx].put(target, view.clone());
                    views.push(view);
                }
            }
        }
        Ok(views)
    }

    /// Returns `user`'s social feed: the events of all the users she
    /// follows, newest first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if the user is not in the social
    /// graph.
    pub fn read_feed(&self, user: UserId) -> Result<Vec<Event>> {
        self.check_user(user)?;
        let targets = self.graph.followees(user).to_vec();
        let views = self.read(user, &targets)?;
        let mut events: Vec<Event> = views
            .into_iter()
            .flat_map(|v| v.iter().cloned().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(|e| std::cmp::Reverse(e.timestamp()));
        Ok(events)
    }

    /// Number of replicas the placement engine currently keeps for `user`'s
    /// view.
    pub fn replica_count(&self, user: UserId) -> usize {
        self.engine.lock().replica_count(user)
    }

    /// The social graph the cluster serves.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The topology the cluster runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runtime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            persistent_writes: self.persistent.write_count(),
            persistent_reads: self.persistent.read_count(),
            cached_views: self.servers.iter().map(ServerHandle::len).sum(),
        }
    }

    /// Stops every server thread. Dropping the cluster has the same effect;
    /// this method only makes the teardown explicit.
    pub fn shutdown(mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn cluster() -> (Cluster, SocialGraph) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 150, 3).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let cluster = Cluster::spawn(&graph, topology, StoreConfig::default()).unwrap();
        (cluster, graph)
    }

    #[test]
    fn read_your_writes_through_a_follower() {
        let (cluster, graph) = cluster();
        // Find an author who has at least one follower.
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        cluster.write(author, b"first post".to_vec()).unwrap();
        cluster.write(author, b"second post".to_vec()).unwrap();
        let feed = cluster.read_feed(reader).unwrap();
        assert!(feed.iter().any(|e| e.payload() == b"second post"));
        // Newest first.
        let author_events: Vec<&Event> = feed.iter().filter(|e| e.author() == author).collect();
        assert_eq!(author_events[0].payload(), b"second post");
        cluster.shutdown();
    }

    #[test]
    fn misses_fill_the_cache_and_turn_into_hits() {
        let (cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        // Read before any write: every fetched view is a miss.
        let _ = cluster.read(reader, &[author]).unwrap();
        let after_first = cluster.stats();
        assert!(after_first.cache_misses >= 1);
        // Reading the same view again hits the cache.
        let _ = cluster.read(reader, &[author]).unwrap();
        let after_second = cluster.stats();
        assert!(after_second.cache_hits >= 1);
        assert_eq!(after_second.cache_misses, after_first.cache_misses);
        assert!(after_second.cached_views >= 1);
        cluster.shutdown();
    }

    #[test]
    fn unknown_users_are_rejected() {
        let (cluster, _) = cluster();
        let ghost = UserId::new(9_999);
        assert!(matches!(
            cluster.write(ghost, vec![]),
            Err(Error::UnknownUser(_))
        ));
        assert!(matches!(
            cluster.read(ghost, &[]),
            Err(Error::UnknownUser(_))
        ));
        assert!(matches!(
            cluster.read_feed(ghost),
            Err(Error::UnknownUser(_))
        ));
        // Unknown targets are skipped, not errors.
        let known = UserId::new(0);
        let views = cluster.read(known, &[ghost]).unwrap();
        assert!(views.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn writes_reach_every_replica() {
        let (cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        cluster.write(author, b"v1".to_vec()).unwrap();
        assert!(cluster.replica_count(author) >= 1);
        let stats = cluster.stats();
        assert_eq!(stats.persistent_writes, 1);
        assert!(stats.cached_views >= 1);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_make_progress() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 100, 9).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let cluster = Cluster::spawn(&graph, topology, StoreConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cluster = &cluster;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let user = UserId::new((t * 25 + i) % 100);
                        cluster.write(user, vec![t as u8, i as u8]).unwrap();
                        let _ = cluster.read_feed(user).unwrap();
                    }
                });
            }
        });
        let stats = cluster.stats();
        assert_eq!(stats.persistent_writes, 200);
        assert!(stats.cache_hits + stats.cache_misses > 0);
        cluster.shutdown();
    }
}
