//! The client-facing cluster: broker logic + placement engine + server
//! threads + persistent store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dynasore_core::{routing::closest_replica, DynaSoReEngine, InitialPlacement};
use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
// `PlacementEngine` lives in `dynasore-types` (layer 0); import it from
// there, not through the `dynasore_sim` re-export two layers up — the store
// needs the trait, not the simulator.
use dynasore_types::{
    ClusterEvent, Error, Event, MachineId, MemoryBudget, Message, PlacementEngine, Result, SimTime,
    SubtreeId, TraceEventKind, UserId, View,
};

use crate::obs::StoreObs;
use crate::persistent::{MockPersistentStore, PersistentStore};
use crate::server::ServerHandle;

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Extra memory percentage available for replication (30% is the
    /// paper's headline configuration).
    pub extra_memory_percent: u32,
    /// Initial placement of views on servers.
    pub placement: InitialPlacement,
    /// Seed for any randomised decisions.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            extra_memory_percent: 30,
            placement: InitialPlacement::Random { seed: 0 },
            seed: 0,
        }
    }
}

/// Runtime counters of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Reads served from a cache server.
    pub cache_hits: u64,
    /// Reads that had to fall back to the persistent store.
    pub cache_misses: u64,
    /// Events appended to the persistent store.
    pub persistent_writes: u64,
    /// Fetches served by the persistent store (misses + recovery).
    pub persistent_reads: u64,
    /// Views currently cached across all servers.
    pub cached_views: usize,
    /// Protocol messages exchanged with the persistent tier to re-create
    /// views lost to machine failures.
    pub recovery_messages: u64,
}

/// What one [`Cluster::apply_event`] call did: how many placement-protocol
/// messages the engine emitted while reacting, and how many of them were
/// recovery traffic from the persistent tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterChangeReport {
    /// All messages the engine emitted while absorbing the event.
    pub messages: u64,
    /// The subset exchanged with the persistent tier (lost-master refills).
    pub recovery_messages: u64,
}

/// A running in-memory view store: one thread per cache server, routed by a
/// DynaSoRe placement engine, backed by a durable tier — the in-memory
/// [`MockPersistentStore`] by default ([`Cluster::spawn`]), or any
/// [`PersistentStore`] such as the file-backed
/// [`LogStructuredStore`](crate::LogStructuredStore)
/// ([`Cluster::spawn_with_store`]).
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Cluster {
    topology: Topology,
    graph: SocialGraph,
    engine: Mutex<DynaSoReEngine>,
    servers: Vec<ServerHandle>,
    server_index: HashMap<MachineId, usize>,
    persistent: Arc<dyn PersistentStore>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    recovery_messages: AtomicU64,
    shut_down: AtomicBool,
    /// Whether the persistent tier was successfully flushed and synced
    /// during shutdown — tracked separately from `shut_down` so a retry
    /// after a failed sync actually syncs instead of returning early.
    synced: AtomicBool,
    /// Optional flight-recorder observer; `None` (the default) keeps every
    /// path exactly the unobserved code. Cluster membership events are
    /// traced through it, stamped with monotonic wall-clock time.
    obs: Option<StoreObs>,
}

impl Cluster {
    /// Spawns the cluster: builds the placement engine for `graph` over
    /// `topology` and starts one thread per view server.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine cannot be built (empty graph,
    /// insufficient capacity, invalid placement).
    pub fn spawn(graph: &SocialGraph, topology: Topology, config: StoreConfig) -> Result<Self> {
        Cluster::spawn_with_store(
            graph,
            topology,
            config,
            Arc::new(MockPersistentStore::new()),
        )
    }

    /// Spawns the cluster against an explicit durable tier. Passing a shared
    /// [`LogStructuredStore`](crate::LogStructuredStore) runs the cluster
    /// over an on-disk log: killed-and-restarted server threads then recover
    /// views by demand-filling from state that was (or can be) re-read from
    /// real bytes, and a reopen of the same directory after
    /// [`Cluster::shutdown`] sees every acknowledged write.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine cannot be built (empty graph,
    /// insufficient capacity, invalid placement).
    pub fn spawn_with_store(
        graph: &SocialGraph,
        topology: Topology,
        config: StoreConfig,
        persistent: Arc<dyn PersistentStore>,
    ) -> Result<Self> {
        let engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(
                graph.user_count(),
                config.extra_memory_percent,
            ))
            .initial_placement(config.placement.clone())
            .build(graph)?;

        let servers: Vec<ServerHandle> = topology
            .servers()
            .iter()
            .map(|s| ServerHandle::spawn(s.machine()))
            .collect();
        let server_index = servers
            .iter()
            .enumerate()
            .map(|(i, s)| (s.machine, i))
            .collect();

        Ok(Cluster {
            topology,
            graph: graph.clone(),
            engine: Mutex::new(engine),
            servers,
            server_index,
            persistent,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recovery_messages: AtomicU64::new(0),
            shut_down: AtomicBool::new(false),
            synced: AtomicBool::new(false),
            obs: None,
        })
    }

    /// Installs a flight-recorder observer: cluster membership events
    /// ([`Cluster::apply_event`]) are traced through it from now on. Share
    /// the same [`StoreObs`] with
    /// [`ShardedLogStore::open_observed`](crate::ShardedLogStore::open_observed)
    /// to interleave membership changes with the durable tier's commit,
    /// rotation and flusher events on one timeline.
    pub fn set_observer(&mut self, obs: StoreObs) {
        self.obs = Some(obs);
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs(self.clock.fetch_add(1, Ordering::Relaxed))
    }

    fn check_user(&self, user: UserId) -> Result<()> {
        if self.shut_down.load(Ordering::Acquire) {
            return Err(Error::ClusterShutdown);
        }
        if self.graph.contains_user(user) {
            Ok(())
        } else {
            Err(Error::UnknownUser(user))
        }
    }

    /// The paper's `Write(u)` operation: persists a new event for `user` and
    /// updates every cached replica of her view.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if the user is not in the social
    /// graph.
    pub fn write(&self, user: UserId, payload: Vec<u8>) -> Result<()> {
        self.check_user(user)?;
        // 1. The persistent store generates the new version of the view.
        let view = self.persistent.append(user, payload)?;
        // 2. The write proxy updates the placement statistics and pushes the
        //    new version to every replica (§3.3).
        let replicas = {
            let mut engine = self.engine.lock();
            let mut messages = Vec::new();
            engine.handle_write(user, self.now(), &mut messages);
            engine.replica_servers(user)
        };
        for machine in replicas.iter() {
            if let Some(&idx) = self.server_index.get(machine) {
                self.servers[idx].put(user, view.clone());
            }
        }
        // Cached copies on servers the placement engine no longer lists as
        // replicas are stale replicas that were evicted or migrated away;
        // drop them so the cache mirrors the placement.
        for server in &self.servers {
            if !replicas.contains(&server.machine) && server.get(user).is_some() {
                server.evict(user);
            }
        }
        Ok(())
    }

    /// The paper's `Read(u, L)` operation: returns the views of every user
    /// in `targets`, served from the cache and demand-filled from the
    /// persistent store on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if `user` is not in the social graph
    /// (unknown *targets* are skipped, mirroring a cache that simply has
    /// nothing for them).
    pub fn read(&self, user: UserId, targets: &[UserId]) -> Result<Vec<View>> {
        self.check_user(user)?;
        // Update statistics and (possibly) placement, then capture routing
        // decisions while holding the engine lock.
        let routed: Vec<(UserId, Option<MachineId>)> = {
            let mut engine = self.engine.lock();
            let mut messages = Vec::new();
            engine.handle_read(user, targets, self.now(), &mut messages);
            let proxy = engine
                .read_proxy(user)
                .map(|b| b.machine())
                .unwrap_or_else(|| self.topology.brokers()[0].machine());
            targets
                .iter()
                .filter(|t| self.graph.contains_user(**t))
                .map(|&t| {
                    let replicas = engine.replica_servers(t);
                    (t, closest_replica(&self.topology, proxy, &replicas))
                })
                .collect()
        };

        let mut views = Vec::with_capacity(routed.len());
        for (target, server) in routed {
            let Some(machine) = server else { continue };
            let Some(&idx) = self.server_index.get(&machine) else {
                continue;
            };
            match self.servers[idx].get(target) {
                Some(view) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    views.push(view);
                }
                None => {
                    // Cache miss: demand-fill from the persistent store.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let view = self.persistent.fetch(target)?;
                    self.servers[idx].put(target, view.clone());
                    views.push(view);
                }
            }
        }
        Ok(views)
    }

    /// Returns `user`'s social feed: the events of all the users she
    /// follows, newest first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if the user is not in the social
    /// graph.
    pub fn read_feed(&self, user: UserId) -> Result<Vec<Event>> {
        self.check_user(user)?;
        let targets = self.graph.followees(user).to_vec();
        let views = self.read(user, &targets)?;
        let mut events: Vec<Event> = views
            .into_iter()
            .flat_map(|v| v.iter().cloned().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(|e| std::cmp::Reverse(e.timestamp()));
        Ok(events)
    }

    /// Number of replicas the placement engine currently keeps for `user`'s
    /// view.
    pub fn replica_count(&self, user: UserId) -> usize {
        self.engine.lock().replica_count(user)
    }

    /// The social graph the cluster serves.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The topology the cluster runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runtime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            persistent_writes: self.persistent.write_count(),
            persistent_reads: self.persistent.read_count(),
            cached_views: self.servers.iter().map(ServerHandle::len).sum(),
            recovery_messages: self.recovery_messages.load(Ordering::Relaxed),
        }
    }

    /// Applies a [`ClusterEvent`] to the *live* store: machine/rack failures
    /// kill the real server threads (their cached views die with them),
    /// recoveries and added racks spawn fresh ones, and drains migrate state
    /// first. The placement engine reacts through its cluster-change hook —
    /// re-filling lost masters from the persistent tier — and subsequent
    /// reads transparently demand-fill the restarted caches from
    /// [`MockPersistentStore`].
    ///
    /// Takes `&mut self`: cluster reconfiguration is an administrative
    /// operation that excludes concurrent clients for its (short) duration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ClusterShutdown`] after [`Cluster::shutdown`], and
    /// propagates topology errors (unknown machines, growth on a flat
    /// layout).
    pub fn apply_event(&mut self, event: ClusterEvent) -> Result<ClusterChangeReport> {
        if self.shut_down.load(Ordering::Acquire) {
            return Err(Error::ClusterShutdown);
        }
        let time = self.now();
        // Snapshot liveness before the event so revivals only touch machines
        // that were actually down: restarting a running server thread would
        // wipe its warm cache while the engine still counts it warm.
        // Retired machines are excluded: a stale repair event for a
        // decommissioned rack must not respawn its server threads.
        let previously_dead: Vec<MachineId> = match event {
            ClusterEvent::MachineUp { machine }
                if !self.topology.is_live(machine) && !self.topology.is_retired(machine) =>
            {
                vec![machine]
            }
            ClusterEvent::RackUp { rack } => {
                let topology = &self.topology;
                topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()))
                    .into_iter()
                    .filter(|&m| !topology.is_live(m) && !topology.is_retired(m))
                    .collect()
            }
            _ => Vec::new(),
        };
        // Validate against (and sync) the store's own topology copy first,
        // then let the engine absorb the event. Both copies see the same
        // event stream, so they stay identical.
        self.topology.apply_cluster_event(event)?;
        if let Some(obs) = &self.obs {
            obs.trace(TraceEventKind::ClusterChange { event });
        }
        let mut out: Vec<Message> = Vec::new();
        self.engine
            .get_mut()
            .on_cluster_change(event, time, &mut out);
        match event {
            ClusterEvent::MachineDown { machine } | ClusterEvent::DrainMachine { machine } => {
                self.stop_server_thread(machine);
            }
            ClusterEvent::MachineUp { .. } | ClusterEvent::RackUp { .. } => {
                for machine in previously_dead {
                    self.restart_server_thread(machine);
                }
            }
            ClusterEvent::RackDown { rack } => {
                for machine in self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()))
                {
                    self.stop_server_thread(machine);
                }
            }
            ClusterEvent::RemoveRack { rack } => {
                // Elastic shrink: the engine has already evacuated the
                // rack's views, so its server threads retire for good —
                // joined here, never respawned (the topology rejects
                // revival of a retired rack).
                for machine in self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()))
                {
                    self.stop_server_thread(machine);
                }
            }
            ClusterEvent::AddRack => {
                // The topology grew above; spawn threads for the new servers.
                for server in self.topology.servers() {
                    let machine = server.machine();
                    if !self.server_index.contains_key(&machine) {
                        self.server_index.insert(machine, self.servers.len());
                        self.servers.push(ServerHandle::spawn(machine));
                    }
                }
            }
        }
        let recovery = out.iter().filter(|m| m.involves_persistent()).count() as u64;
        self.recovery_messages
            .fetch_add(recovery, Ordering::Relaxed);
        Ok(ClusterChangeReport {
            messages: out.len() as u64,
            recovery_messages: recovery,
        })
    }

    /// Kills the cache-server thread of `machine` (no-op for brokers or
    /// already-stopped servers). The thread's views are gone; the engine has
    /// already rerouted around them.
    fn stop_server_thread(&mut self, machine: MachineId) {
        if let Some(&idx) = self.server_index.get(&machine) {
            self.servers[idx].shutdown();
        }
    }

    /// Spawns a fresh (empty) cache-server thread for `machine`, replacing
    /// the dead handle.
    fn restart_server_thread(&mut self, machine: MachineId) {
        if let Some(&idx) = self.server_index.get(&machine) {
            self.servers[idx] = ServerHandle::spawn(machine);
        }
    }

    /// Stops every server thread and rejects all further requests with
    /// [`Error::ClusterShutdown`]. The persistent tier is flushed and synced
    /// *before* the server threads are joined, so every write acknowledged
    /// before this call is crash-durable once it returns `Ok` — a reopen of
    /// a file-backed tier's directory sees all of them. Idempotent once it
    /// has succeeded: further calls are no-ops. After an `Err`, calling it
    /// again retries the flush and sync (the server threads are only joined
    /// once). Dropping the cluster without calling this joins the threads
    /// just the same; only a `shutdown` that returned `Ok` guarantees the
    /// durable sync.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing or syncing the persistent tier
    /// (the server threads are still joined in that case).
    pub fn shutdown(&mut self) -> Result<()> {
        let first = !self.shut_down.swap(true, Ordering::AcqRel);
        // Durability first: acknowledged writes must hit disk even if a
        // server thread refuses to join promptly. Retried on every call
        // until it succeeds, so an `Ok` from any call is the guarantee.
        let synced = if self.synced.load(Ordering::Acquire) {
            Ok(())
        } else {
            self.persistent
                .flush()
                .and_then(|()| self.persistent.sync())
                .map(|()| self.synced.store(true, Ordering::Release))
        };
        if first {
            for server in &mut self.servers {
                server.shutdown();
            }
        }
        synced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn cluster() -> (Cluster, SocialGraph) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 150, 3).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let cluster = Cluster::spawn(&graph, topology, StoreConfig::default()).unwrap();
        (cluster, graph)
    }

    /// A durable tier whose `sync` fails once — to pin the shutdown retry
    /// contract.
    #[derive(Debug)]
    struct FlakySyncStore {
        inner: MockPersistentStore,
        fail_next_sync: AtomicBool,
        syncs: AtomicU64,
    }

    impl PersistentStore for FlakySyncStore {
        fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
            Ok(self.inner.append(user, payload))
        }
        fn fetch(&self, user: UserId) -> Result<View> {
            Ok(self.inner.fetch(user))
        }
        fn sync(&self) -> Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            if self.fail_next_sync.swap(false, Ordering::AcqRel) {
                Err(Error::io("injected sync failure"))
            } else {
                Ok(())
            }
        }
        fn write_count(&self) -> u64 {
            self.inner.write_count()
        }
        fn read_count(&self) -> u64 {
            self.inner.read_count()
        }
    }

    #[test]
    fn shutdown_retries_the_sync_after_a_failure_and_is_then_idempotent() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 60, 1).unwrap();
        let topology = Topology::tree(2, 2, 3, 1).unwrap();
        let store = Arc::new(FlakySyncStore {
            inner: MockPersistentStore::new(),
            fail_next_sync: AtomicBool::new(true),
            syncs: AtomicU64::new(0),
        });
        let mut cluster =
            Cluster::spawn_with_store(&graph, topology, StoreConfig::default(), store.clone())
                .unwrap();
        let user = graph.users().next().unwrap();
        cluster.write(user, b"must survive".to_vec()).unwrap();

        // First shutdown: sync fails, the error is surfaced, requests are
        // rejected from now on.
        assert!(cluster.shutdown().is_err());
        assert!(matches!(
            cluster.write(user, vec![]),
            Err(Error::ClusterShutdown)
        ));

        // Retry actually re-runs the sync (it must not be swallowed by the
        // shut_down flag) and succeeds; after that, further calls are
        // no-ops.
        cluster.shutdown().unwrap();
        let syncs_after_success = store.syncs.load(Ordering::Relaxed);
        assert_eq!(syncs_after_success, 2, "retry must re-run the sync");
        cluster.shutdown().unwrap();
        assert_eq!(store.syncs.load(Ordering::Relaxed), syncs_after_success);
    }

    #[test]
    fn read_your_writes_through_a_follower() {
        let (mut cluster, graph) = cluster();
        // Find an author who has at least one follower.
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        cluster.write(author, b"first post".to_vec()).unwrap();
        cluster.write(author, b"second post".to_vec()).unwrap();
        let feed = cluster.read_feed(reader).unwrap();
        assert!(feed.iter().any(|e| e.payload() == b"second post"));
        // Newest first.
        let author_events: Vec<&Event> = feed.iter().filter(|e| e.author() == author).collect();
        assert_eq!(author_events[0].payload(), b"second post");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn misses_fill_the_cache_and_turn_into_hits() {
        let (mut cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        // Read before any write: every fetched view is a miss.
        let _ = cluster.read(reader, &[author]).unwrap();
        let after_first = cluster.stats();
        assert!(after_first.cache_misses >= 1);
        // Reading the same view again hits the cache.
        let _ = cluster.read(reader, &[author]).unwrap();
        let after_second = cluster.stats();
        assert!(after_second.cache_hits >= 1);
        assert_eq!(after_second.cache_misses, after_first.cache_misses);
        assert!(after_second.cached_views >= 1);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn unknown_users_are_rejected() {
        let (mut cluster, _) = cluster();
        let ghost = UserId::new(9_999);
        assert!(matches!(
            cluster.write(ghost, vec![]),
            Err(Error::UnknownUser(_))
        ));
        assert!(matches!(
            cluster.read(ghost, &[]),
            Err(Error::UnknownUser(_))
        ));
        assert!(matches!(
            cluster.read_feed(ghost),
            Err(Error::UnknownUser(_))
        ));
        // Unknown targets are skipped, not errors.
        let known = UserId::new(0);
        let views = cluster.read(known, &[ghost]).unwrap();
        assert!(views.is_empty());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn writes_reach_every_replica() {
        let (mut cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        cluster.write(author, b"v1".to_vec()).unwrap();
        assert!(cluster.replica_count(author) >= 1);
        let stats = cluster.stats();
        assert_eq!(stats.persistent_writes, 1);
        assert!(stats.cached_views >= 1);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_further_requests() {
        let (mut cluster, graph) = cluster();
        let user = graph.users().next().unwrap();
        cluster.write(user, b"pre-shutdown".to_vec()).unwrap();
        cluster.shutdown().unwrap();
        cluster.shutdown().unwrap(); // Second call is a no-op.
        assert!(matches!(
            cluster.write(user, b"post".to_vec()),
            Err(Error::ClusterShutdown)
        ));
        assert!(matches!(
            cluster.read(user, &[]),
            Err(Error::ClusterShutdown)
        ));
        assert!(matches!(
            cluster.read_feed(user),
            Err(Error::ClusterShutdown)
        ));
        assert!(matches!(
            cluster.apply_event(ClusterEvent::AddRack),
            Err(Error::ClusterShutdown)
        ));
        let message = Error::ClusterShutdown.to_string();
        assert!(message.contains("shut down"), "undescriptive: {message}");
    }

    #[test]
    fn dropping_without_shutdown_joins_all_threads() {
        // The drop impls must neither hang nor leak: spawning and dropping
        // repeatedly would deadlock here if a join were missed.
        for seed in 0..3 {
            let graph = SocialGraph::generate(GraphPreset::TwitterLike, 60, seed).unwrap();
            let topology = Topology::tree(2, 2, 3, 1).unwrap();
            let cluster = Cluster::spawn(&graph, topology, StoreConfig::default()).unwrap();
            let user = graph.users().next().unwrap();
            cluster.write(user, vec![seed as u8]).unwrap();
            drop(cluster);
        }
    }

    #[test]
    fn killed_machines_fall_back_to_the_persistent_store() {
        let (mut cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        cluster.write(author, b"durable".to_vec()).unwrap();
        let victim = {
            let engine = cluster.engine.lock();
            engine.replica_servers(author)[0]
        };
        let change = cluster
            .apply_event(ClusterEvent::MachineDown { machine: victim })
            .unwrap();
        assert!(
            change.recovery_messages > 0,
            "losing a master must cost persistent-tier traffic"
        );
        assert!(change.messages >= change.recovery_messages);
        // The data survives the crash: the read is served via the recovered
        // replica, demand-filled from the persistent store.
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].latest().unwrap().payload(), b"durable");
        assert!(!cluster
            .engine
            .lock()
            .replica_servers(author)
            .contains(&victim));
        assert!(cluster.stats().recovery_messages > 0);

        // Restart the machine: it rejoins empty and serves again.
        cluster
            .apply_event(ClusterEvent::MachineUp { machine: victim })
            .unwrap();
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1);
        // Unknown machines are rejected.
        assert!(cluster
            .apply_event(ClusterEvent::MachineDown {
                machine: MachineId::new(9_999)
            })
            .is_err());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn rack_failure_and_live_resize_keep_serving() {
        let (mut cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        cluster
            .write(author, b"survives the rack".to_vec())
            .unwrap();
        cluster
            .apply_event(ClusterEvent::RackDown {
                rack: dynasore_types::RackId::new(0),
            })
            .unwrap();
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].latest().unwrap().payload(), b"survives the rack");

        // Grow the cluster while it runs: new server threads spawn and the
        // store keeps serving.
        let servers_before = cluster.servers.len();
        cluster.apply_event(ClusterEvent::AddRack).unwrap();
        assert!(cluster.servers.len() > servers_before);
        assert_eq!(cluster.topology().server_count(), cluster.servers.len());
        cluster.write(author, b"after resize".to_vec()).unwrap();
        let feed = cluster.read_feed(reader).unwrap();
        assert!(feed.iter().any(|e| e.payload() == b"after resize"));
        cluster.shutdown().unwrap();
    }

    #[test]
    fn remove_rack_retires_server_threads_and_keeps_serving() {
        let (mut cluster, graph) = cluster();
        let author = graph
            .users()
            .find(|&u| !graph.followers(u).is_empty())
            .unwrap();
        let reader = graph.followers(author)[0];
        cluster.write(author, b"before shrink".to_vec()).unwrap();

        // Decommission rack 0 while the store runs: the engine evacuates,
        // the rack's server threads are joined for good.
        let rack = dynasore_types::RackId::new(0);
        let rack_machines = cluster.topology.machines_in_subtree(SubtreeId::Rack(0));
        cluster
            .apply_event(ClusterEvent::RemoveRack { rack })
            .unwrap();
        assert!(cluster.topology().is_rack_retired(rack));

        // A stale repair event for the retired rack is a harmless no-op: no
        // machine revives and no server thread respawns.
        cluster.apply_event(ClusterEvent::RackUp { rack }).unwrap();
        for machine in rack_machines {
            assert!(!cluster.topology().is_live(machine));
        }

        // The acknowledged write survives the shrink and new writes land.
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].latest().unwrap().payload(), b"before shrink");
        cluster.write(author, b"after shrink".to_vec()).unwrap();
        let feed = cluster.read_feed(reader).unwrap();
        assert!(feed.iter().any(|e| e.payload() == b"after shrink"));

        // Removing an already-retired rack is rejected.
        assert!(cluster
            .apply_event(ClusterEvent::RemoveRack { rack })
            .is_err());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn concurrent_clients_make_progress() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 100, 9).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let mut cluster = Cluster::spawn(&graph, topology, StoreConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cluster = &cluster;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let user = UserId::new((t * 25 + i) % 100);
                        cluster.write(user, vec![t as u8, i as u8]).unwrap();
                        let _ = cluster.read_feed(user).unwrap();
                    }
                });
            }
        });
        let stats = cluster.stats();
        assert_eq!(stats.persistent_writes, 200);
        assert!(stats.cache_hits + stats.cache_misses > 0);
        cluster.shutdown().unwrap();
    }
}
