//! Segment files of the log-structured persistent store.
//!
//! A segment is one append-only file: an 8-byte magic header followed by
//! framed [`DurableRecord`]s (see `dynasore_types::durable` for the frame
//! layout). Segments are named `seg-<seq>.log` with a zero-padded,
//! monotonically increasing sequence number; replay order is sequence order,
//! so a record in a later segment supersedes earlier ones where the record
//! semantics say so (snapshots, tombstones).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dynasore_types::{DurableRecord, Error, Result};

/// Magic bytes opening every segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"DYNASEG1";

/// Builds the file name of segment `seq`.
pub(crate) fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:010}.log")
}

/// Parses a segment sequence number out of a file name, if it is one.
pub(crate) fn parse_segment_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if rest.len() != 10 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Lists the segment files of `dir`, sorted by sequence number.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_seq) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// What replaying one segment found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SegmentReplay {
    /// Bytes read and validated (magic header plus whole records).
    pub valid_bytes: u64,
    /// Records decoded.
    pub records: u64,
    /// Trailing bytes discarded as a torn tail (0 for a clean segment).
    pub torn_bytes: u64,
}

/// Reads every valid record of the segment at `path` in order, invoking
/// `apply` for each, and reports how far the valid prefix reached. A torn
/// tail (crash truncation) ends the replay silently; a structurally corrupt
/// record (valid checksum, malformed body) is an error.
pub(crate) fn replay_segment(
    path: &Path,
    mut apply: impl FnMut(DurableRecord),
) -> Result<SegmentReplay> {
    let bytes = std::fs::read(path)?;
    let mut replay = SegmentReplay::default();
    // A header shorter than the magic is itself a torn tail (a crash can
    // truncate a freshly created segment); wrong bytes are corruption.
    if bytes.len() < SEGMENT_MAGIC.len() {
        if !SEGMENT_MAGIC.starts_with(&bytes) {
            return Err(Error::CorruptRecord(format!(
                "{} does not start with the segment magic",
                path.display()
            )));
        }
        replay.torn_bytes = bytes.len() as u64;
        return Ok(replay);
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(Error::CorruptRecord(format!(
            "{} does not start with the segment magic",
            path.display()
        )));
    }
    let mut offset = SEGMENT_MAGIC.len();
    while offset < bytes.len() {
        match DurableRecord::decode(&bytes[offset..]).map_err(|e| match e {
            Error::CorruptRecord(detail) => {
                Error::CorruptRecord(format!("{} at offset {offset}: {detail}", path.display()))
            }
            other => other,
        })? {
            Some((record, consumed)) => {
                apply(record);
                replay.records += 1;
                offset += consumed;
            }
            None => break, // Torn tail: the log ends here.
        }
    }
    replay.valid_bytes = offset as u64;
    replay.torn_bytes = (bytes.len() - offset) as u64;
    Ok(replay)
}

/// The writable side of one segment file.
#[derive(Debug)]
pub(crate) struct Segment {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Logical length: every byte handed to the writer, flushed or not.
    len: u64,
}

impl Segment {
    /// Creates a fresh segment `seq` in `dir` and writes its magic header.
    pub fn create(dir: &Path, seq: u64) -> Result<Segment> {
        let path = dir.join(segment_file_name(seq));
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(SEGMENT_MAGIC)?;
        Ok(Segment {
            path,
            writer,
            len: SEGMENT_MAGIC.len() as u64,
        })
    }

    /// Reopens an existing segment for appending, truncating it to
    /// `valid_len` first (crash repair: the torn tail is physically removed
    /// so new records append after the last whole one). A crash can even
    /// tear the magic header of a freshly created segment; in that case the
    /// header is rewritten so the file stays a valid, empty segment.
    pub fn reopen(dir: &Path, seq: u64, valid_len: u64) -> Result<Segment> {
        let path = dir.join(segment_file_name(seq));
        let magic_len = SEGMENT_MAGIC.len() as u64;
        let mut file = OpenOptions::new().write(true).open(&path)?;
        let len = if valid_len < magic_len {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(SEGMENT_MAGIC)?;
            magic_len
        } else {
            file.set_len(valid_len)?;
            file.seek(SeekFrom::End(0))?;
            valid_len
        };
        Ok(Segment {
            path,
            writer: BufWriter::new(file),
            len,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical length in bytes (including buffered, not-yet-flushed data).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Appends pre-encoded record bytes.
    pub fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.writer.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Pushes buffered bytes to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and then fsyncs the file: after this returns, every appended
    /// record survives a machine crash.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Flushes buffered bytes to the OS and returns a duplicated handle to
    /// the backing file. Fsyncing the duplicate covers every byte flushed
    /// here (the kernel syncs the *file*, not the descriptor), so a caller
    /// can make the segment durable without holding whatever lock guards
    /// it — the handle stays valid even if the segment is sealed meanwhile.
    pub fn detached_handle(&mut self) -> Result<File> {
        self.writer.flush()?;
        Ok(self.writer.get_ref().try_clone()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::{SimTime, UserId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynasore-segment-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn event(user: u32, t: u64) -> DurableRecord {
        DurableRecord::Event {
            user: UserId::new(user),
            timestamp: SimTime::from_secs(t),
            payload: vec![user as u8; 5],
        }
    }

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(segment_file_name(7), "seg-0000000007.log");
        assert_eq!(parse_segment_seq("seg-0000000007.log"), Some(7));
        assert_eq!(parse_segment_seq("seg-7.log"), None);
        assert_eq!(parse_segment_seq("other.log"), None);
        assert_eq!(parse_segment_seq("seg-00000000xx.log"), None);
    }

    #[test]
    fn append_flush_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut seg = Segment::create(&dir, 1).unwrap();
        let mut buf = Vec::new();
        for t in 0..10u64 {
            buf.clear();
            event(t as u32, t).encode_into(&mut buf).unwrap();
            seg.append(&buf).unwrap();
        }
        seg.sync().unwrap();
        let mut replayed = Vec::new();
        let stats = replay_segment(seg.path(), |r| replayed.push(r)).unwrap();
        assert_eq!(stats.records, 10);
        assert_eq!(stats.torn_bytes, 0);
        assert_eq!(stats.valid_bytes, seg.len());
        assert_eq!(replayed[3], event(3, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_repaired_on_reopen() {
        let dir = temp_dir("torn");
        let mut seg = Segment::create(&dir, 1).unwrap();
        let mut buf = Vec::new();
        event(1, 1).encode_into(&mut buf).unwrap();
        let first_end = SEGMENT_MAGIC.len() as u64 + buf.len() as u64;
        seg.append(&buf).unwrap();
        buf.clear();
        event(2, 2).encode_into(&mut buf).unwrap();
        seg.append(&buf).unwrap();
        seg.sync().unwrap();
        let path = seg.path().to_path_buf();
        drop(seg);
        // Crash: the second record loses its last byte.
        let full = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 1)
            .unwrap();
        let mut records = 0;
        let stats = replay_segment(&path, |_| records += 1).unwrap();
        assert_eq!(records, 1);
        assert_eq!(stats.valid_bytes, first_end);
        assert!(stats.torn_bytes > 0);
        // Reopen truncates the tail and appends cleanly after it.
        let mut seg = Segment::reopen(&dir, 1, stats.valid_bytes).unwrap();
        buf.clear();
        event(3, 3).encode_into(&mut buf).unwrap();
        seg.append(&buf).unwrap();
        seg.sync().unwrap();
        let mut replayed = Vec::new();
        let stats = replay_segment(seg.path(), |r| replayed.push(r)).unwrap();
        assert_eq!(stats.torn_bytes, 0);
        assert_eq!(replayed, vec![event(1, 1), event(3, 3)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected_and_short_magic_is_torn() {
        let dir = temp_dir("magic");
        let alien = dir.join(segment_file_name(1));
        std::fs::write(&alien, b"NOTASEGMENT").unwrap();
        assert!(matches!(
            replay_segment(&alien, |_| {}),
            Err(Error::CorruptRecord(_))
        ));
        // A magic prefix cut short by a crash is an empty segment.
        std::fs::write(&alien, &SEGMENT_MAGIC[..3]).unwrap();
        let stats = replay_segment(&alien, |_| panic!("no records")).unwrap();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.torn_bytes, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_ignores_unrelated_files() {
        let dir = temp_dir("list");
        drop(Segment::create(&dir, 3).unwrap());
        drop(Segment::create(&dir, 1).unwrap());
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        let segments = list_segments(&dir).unwrap();
        let seqs: Vec<u64> = segments.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![1, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
