//! A runnable, multi-threaded in-memory view store built on the DynaSoRe
//! placement engine.
//!
//! The simulator in `dynasore-sim` reproduces the paper's *measurements*;
//! this crate demonstrates the paper's *API* (§3.1) as an actual system you
//! can embed: a [`Cluster`] spawns one thread per view server, connected by
//! channels, backed by a durable tier (the store of §3.3) behind the
//! [`PersistentStore`] trait, and routed by a
//! [`DynaSoReEngine`](dynasore_core::DynaSoReEngine) that replicates hot
//! views close to their readers. Three durable tiers ship with the crate:
//!
//! * [`MockPersistentStore`] — an in-memory map, the default
//!   ([`Cluster::spawn`]), right for pure simulations;
//! * [`LogStructuredStore`] — a file-backed, append-only segment log with
//!   checksummed records, replay-on-open recovery, rotation and compaction
//!   ([`Cluster::spawn_with_store`]), so killed-and-restarted servers
//!   recover views from real bytes;
//! * [`ShardedLogStore`] — N independent log shards routed by a stable
//!   hash of the user id, each running group commit, so the durable tier
//!   keeps pace with the hot path (one fsync covers a whole batch) and
//!   shards recover concurrently on reopen.
//!
//! The API mirrors the paper's memcache-compatible interface:
//!
//! * `Write(u)` — [`Cluster::write`] persists a new event for `u` and pushes
//!   the new version of `u`'s view to every cached replica;
//! * `Read(u, L)` — [`Cluster::read`] returns the views of the users in `L`,
//!   served from the cache servers and demand-filled from the persistent
//!   store on a miss;
//! * [`Cluster::read_feed`] is the convenience social-feed call: it reads
//!   the views of all of `u`'s connections and merges them by timestamp.
//!
//! # Example
//!
//! ```
//! use dynasore_graph::{GraphPreset, SocialGraph};
//! use dynasore_store::{Cluster, StoreConfig};
//! use dynasore_topology::Topology;
//! use dynasore_types::UserId;
//!
//! # fn main() -> Result<(), dynasore_types::Error> {
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 7)?;
//! let topology = Topology::tree(2, 2, 4, 1)?;
//! let mut cluster = Cluster::spawn(&graph, topology, StoreConfig::default())?;
//!
//! let alice = UserId::new(0);
//! let follower = graph.followers(alice).first().copied();
//! cluster.write(alice, b"hello world".to_vec())?;
//! if let Some(reader) = follower {
//!     let feed = cluster.read_feed(reader)?;
//!     assert!(feed.iter().any(|e| e.payload() == b"hello world"));
//! }
//! cluster.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod durable_tier;
mod log;
mod obs;
mod persistent;
mod segment;
mod server;
mod sharded;

pub use cluster::{Cluster, ClusterChangeReport, StoreConfig, StoreStats};
pub use durable_tier::{SimDurableTier, SIM_EVENT_BYTES};
pub use log::{CompactionStats, GroupCommitConfig, LogConfig, LogStructuredStore, RecoveryStats};
pub use obs::{StoreObs, DEFAULT_STORE_RECORDER_CAPACITY};
pub use persistent::{MockPersistentStore, PersistentStore};
pub use sharded::{ShardedConfig, ShardedLogStore, ShardedRecoveryStats};
