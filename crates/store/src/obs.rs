//! The live-store observer: a thread-safe [`FlightRecorder`] +
//! [`MetricsRegistry`] stamped with monotonic wall-clock time.
//!
//! Where the simulator's observer (`dynasore_sim::SimObs`) stamps events
//! with simulated seconds and is owned by one thread, a [`StoreObs`] is
//! shared — cloned into the [`LogStructuredStore`](crate::LogStructuredStore)
//! shards, the background flusher and the [`Cluster`](crate::Cluster) — so
//! it wraps the recorder and registry in one mutex and stamps every event
//! with nanoseconds elapsed since the observer was created. Both observers
//! fold events through the same [`MetricsRegistry::apply`] mapping, so a
//! metric means the same thing whichever side recorded it.
//!
//! Attachment is explicit and optional: nothing in the store touches an
//! observer unless one was installed, so the unobserved path stays exactly
//! the pre-observability code.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dynasore_types::{FlightRecorder, MetricsRegistry, TraceEventKind};

/// Default flight-recorder capacity for live-store observers.
pub const DEFAULT_STORE_RECORDER_CAPACITY: usize = 16_384;

#[derive(Debug)]
struct ObsInner {
    recorder: FlightRecorder,
    registry: MetricsRegistry,
}

/// A shared, thread-safe observer for the live store tier. Cheap to clone
/// (an [`Arc`]); all clones feed the same recorder and registry.
#[derive(Debug, Clone)]
pub struct StoreObs {
    origin: Instant,
    inner: Arc<Mutex<ObsInner>>,
}

impl Default for StoreObs {
    fn default() -> Self {
        StoreObs::new(DEFAULT_STORE_RECORDER_CAPACITY)
    }
}

impl StoreObs {
    /// Creates an observer whose flight recorder keeps the newest
    /// `capacity` events. The ring is allocated here, up front; recording
    /// an event later allocates nothing.
    pub fn new(capacity: usize) -> Self {
        StoreObs {
            origin: Instant::now(),
            inner: Arc::new(Mutex::new(ObsInner {
                recorder: FlightRecorder::new(capacity),
                registry: MetricsRegistry::new(),
            })),
        }
    }

    /// Records one event, stamped with nanoseconds of monotonic time since
    /// this observer was created, and folds it into the registry.
    pub fn trace(&self, kind: TraceEventKind) {
        let t_ns = u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock();
        inner.registry.apply(kind);
        inner.recorder.record(t_ns, kind);
    }

    /// Sizes the registry's per-shard metric families. Call once when
    /// attaching the observer to a sharded store so per-shard updates from
    /// the flusher thread never allocate.
    pub fn ensure_shards(&self, shards: usize) {
        self.inner.lock().registry.ensure_shards(shards);
    }

    /// Events recorded so far (capped by the ring capacity).
    pub fn event_count(&self) -> usize {
        self.inner.lock().recorder.len()
    }

    /// A snapshot of the current registry.
    pub fn registry_snapshot(&self) -> MetricsRegistry {
        self.inner.lock().registry.clone()
    }

    /// Renders the timeline as JSON Lines (oldest event first).
    pub fn to_jsonl(&self) -> String {
        self.inner.lock().recorder.to_jsonl()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.inner.lock().registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::{lint_prometheus, validate_jsonl, MetricId};

    #[test]
    fn clones_share_one_recorder_and_registry() {
        let obs = StoreObs::new(64);
        let clone = obs.clone();
        clone.trace(TraceEventKind::SegmentRotated { segment: 3 });
        obs.trace(TraceEventKind::CompactionRun {
            bytes_before: 100,
            bytes_after: 40,
        });
        assert_eq!(obs.event_count(), 2);
        let registry = obs.registry_snapshot();
        assert_eq!(registry.get(MetricId::SegmentRotations), 1);
        assert_eq!(registry.get(MetricId::Compactions), 1);
        let jsonl = obs.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl).unwrap(), 2);
        assert!(jsonl.contains("\"kind\":\"segment-rotated\""));
        lint_prometheus(&obs.render_prometheus()).unwrap();
    }

    #[test]
    fn timestamps_are_monotonic() {
        let obs = StoreObs::new(8);
        obs.trace(TraceEventKind::CacheRebuilt);
        obs.trace(TraceEventKind::CacheRebuilt);
        let events: Vec<_> = obs.inner.lock().recorder.iter().cloned().collect();
        assert!(events[0].t_ns <= events[1].t_ns);
        assert!(events[0].seq < events[1].seq);
    }
}
