//! The log-structured, file-backed persistent store.
//!
//! [`LogStructuredStore`] is the durable tier made real: every write appends
//! a framed, checksummed [`DurableRecord`] to the active segment file, an
//! in-memory index of full views is rebuilt by *replaying the segments from
//! disk* on open, the active segment rotates at a size threshold, and a
//! compaction pass rewrites the live state as snapshot records, dropping
//! superseded history. `flush` pushes buffered bytes to the operating
//! system; `sync` additionally fsyncs, making everything appended so far
//! crash-durable.
//!
//! Crash semantics: a crash may truncate the log at any byte offset. On
//! open, replay accepts every whole record and stops at the first torn
//! frame (short frame, impossible length, or checksum mismatch); the torn
//! tail is physically truncated away so appends continue after the last
//! whole record. Only the *last* segment may be torn — an earlier torn
//! segment means the files were tampered with and opening fails loudly.
//!
//! Compaction is crash-safe without renames: snapshot segments are written
//! (and fsynced) under *higher* sequence numbers before the superseded
//! segments are deleted, and replay applies segments in sequence order, so
//! a crash at any point between those steps replays to the same state.
//!
//! # Group commit
//!
//! With [`LogConfig::group_commit`] set, appends are *acknowledged* into a
//! bounded in-memory batch instead of being written individually: the event
//! is encoded straight into a reusable [`DurableRecord::Batch`] frame (one
//! copy, no intermediate record value) and the in-memory index is updated
//! immediately, so `fetch` sees the new version at once. The frame is
//! written — and, with [`GroupCommitConfig::sync_on_commit`], fsynced — as
//! **one** record when the batch fills, when the owner calls
//! [`flush`]/[`sync`]/[`commit_pending`], or when a
//! [`ShardedLogStore`](crate::ShardedLogStore) flush interval elapses. K
//! writers therefore pay one fsync instead of K. The durability contract
//! shifts accordingly: an acknowledged-but-uncommitted append can be lost
//! by a crash, and because the batch frame carries a single checksum it is
//! lost *as a unit* — replay never serves a prefix of a batch.
//!
//! [`commit_pending`]: LogStructuredStore::commit_pending

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use dynasore_types::{
    DurableRecord, Error, Event, Result, SimTime, TraceEventKind, UserId, View, MAX_RECORD_BYTES,
    RECORD_HEADER_BYTES,
};

use crate::obs::StoreObs;
use crate::persistent::PersistentStore;
use crate::segment::{list_segments, replay_segment, Segment};

/// Configuration of a [`LogStructuredStore`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Size threshold (bytes) at which the active segment is sealed and a
    /// fresh one started. Small values exercise rotation; the default is
    /// 4 MiB.
    pub segment_max_bytes: u64,
    /// Whether every append is individually fsynced. Durable but slow; the
    /// default (`false`) buffers appends until an explicit [`flush`]/[`sync`]
    /// (or segment rotation, which always syncs the sealed file).
    ///
    /// [`flush`]: LogStructuredStore::flush
    /// [`sync`]: LogStructuredStore::sync
    pub sync_on_append: bool,
    /// Group commit (see the [module docs](self)): appends are acknowledged
    /// into a bounded in-memory batch and committed as one
    /// [`DurableRecord::Batch`] frame when the batch fills or the owner
    /// forces a commit. Mutually exclusive with
    /// [`sync_on_append`](LogConfig::sync_on_append); `None` (the default)
    /// keeps the write-per-append behaviour.
    pub group_commit: Option<GroupCommitConfig>,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_max_bytes: 4 << 20,
            sync_on_append: false,
            group_commit: None,
        }
    }
}

/// Tuning of the group-commit batch (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Acknowledged appends that force a commit once the pending batch holds
    /// this many. Default 4096.
    pub max_batch_records: u32,
    /// Encoded batch-body bytes that force a commit; capped by the
    /// [`MAX_RECORD_BYTES`] frame limit. Default 1 MiB.
    pub max_batch_bytes: usize,
    /// Whether every commit fsyncs — the group durability point: one fsync
    /// covers the whole batch. When `false`, commits only reach the OS page
    /// cache and [`sync`](LogStructuredStore::sync) remains the
    /// machine-crash boundary. Default `true`.
    pub sync_on_commit: bool,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch_records: 4096,
            max_batch_bytes: 1 << 20,
            sync_on_commit: true,
        }
    }
}

/// What rebuilding the index from disk (on open or [`reread`]) measured —
/// the numerator of real recovery bandwidth.
///
/// [`reread`]: LogStructuredStore::reread
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Bytes read and validated (segment headers plus whole records).
    pub bytes_replayed: u64,
    /// Records applied to the index.
    pub records_replayed: u64,
    /// Trailing bytes discarded as a torn tail (nonzero only after a crash
    /// mid-append).
    pub torn_bytes: u64,
    /// Segment files replayed.
    pub segments: usize,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Total segment bytes before the pass.
    pub bytes_before: u64,
    /// Total segment bytes after the pass.
    pub bytes_after: u64,
    /// Segment files before the pass (including the active one).
    pub segments_before: usize,
    /// Segment files after the pass (including the fresh active one).
    pub segments_after: usize,
}

#[derive(Debug)]
struct SealedSegment {
    path: PathBuf,
    bytes: u64,
}

#[derive(Debug)]
struct LogInner {
    dir: PathBuf,
    config: LogConfig,
    /// The materialized state of the log: every live view, rebuilt by
    /// replaying segments on open. `BTreeMap` so compaction and equality
    /// checks iterate in a deterministic order.
    index: BTreeMap<UserId, View>,
    /// Logical clock for event timestamps; recovered as one past the newest
    /// replayed timestamp so post-recovery appends keep timestamps monotonic.
    clock: u64,
    active: Segment,
    sealed: Vec<SealedSegment>,
    next_seq: u64,
    recovery: RecoveryStats,
    scratch: Vec<u8>,
    /// The reusable group-commit frame: an open [`DurableRecord::Batch`]
    /// holding every acknowledged-but-uncommitted append. Empty whenever
    /// `pending_records` is 0; its capacity is retained across commits so
    /// the steady state allocates nothing.
    pending: Vec<u8>,
    /// Events acknowledged into `pending` and not yet committed.
    pending_records: u32,
    lock_path: PathBuf,
    /// Optional flight-recorder observer. `None` (the default) keeps every
    /// write path exactly the unobserved code; when set, batch commits,
    /// segment rotations and compactions emit structured trace events.
    obs: Option<StoreObs>,
}

/// A log-structured, file-backed implementation of the durable tier.
///
/// Drop-in replacement for [`MockPersistentStore`] behind the
/// [`PersistentStore`] trait: same append/fetch semantics, but every write
/// lands in an on-disk segment log and recovery reads real bytes. See the
/// [module documentation](self) for the format and crash semantics.
///
/// [`MockPersistentStore`]: crate::MockPersistentStore
#[derive(Debug)]
pub struct LogStructuredStore {
    inner: Mutex<LogInner>,
    writes: AtomicU64,
    reads: AtomicU64,
}

/// Name of the advisory lock file guarding single ownership of a store
/// directory.
const LOCK_FILE: &str = "LOCK";

/// Claims exclusive ownership of `dir` by creating its `LOCK` file with this
/// process's pid inside. A lock left by a process that is *provably* no
/// longer alive (a real crash — exactly the scenario recovery exists for)
/// is broken and re-claimed; a lock held by a live process, or one whose
/// liveness cannot be checked, is an error, because two writers would
/// corrupt each other's repairs and appends.
fn acquire_dir_lock(dir: &Path) -> Result<PathBuf> {
    let path = dir.join(LOCK_FILE);
    for attempt in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                use std::io::Write;
                let _ = write!(file, "{}", std::process::id());
                return Ok(path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && attempt == 0 => {
                let holder: Option<u32> = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse().ok());
                // Only a pid we can *prove* dead is stale. The proof needs a
                // /proc filesystem; where there is none, refuse rather than
                // break a possibly-live lock.
                let stale = match holder {
                    Some(pid) => {
                        pid != std::process::id()
                            && Path::new("/proc/self").exists()
                            && !Path::new(&format!("/proc/{pid}")).exists()
                    }
                    None => false,
                };
                if !stale {
                    return Err(Error::invalid_config(format!(
                        "store directory {} is locked by pid {}; two owners would corrupt \
                         the log — use LogStructuredStore::read_back for inspection, or \
                         delete the LOCK file if the owner is known to be gone",
                        dir.display(),
                        holder.map_or_else(|| "unknown".into(), |p| p.to_string()),
                    )));
                }
                // Break the dead owner's lock via rename: of several racing
                // openers, only one rename succeeds, so nobody can delete a
                // lock that a faster racer has already replaced.
                let takeover = dir.join(format!("LOCK.stale.{}", std::process::id()));
                if std::fs::rename(&path, &takeover).is_ok() {
                    let _ = std::fs::remove_file(&takeover);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Second create_new also lost: another opener claimed the broken lock
    // first.
    Err(Error::invalid_config(format!(
        "store directory {} is locked by another instance that claimed it concurrently",
        dir.display()
    )))
}

fn apply_record(index: &mut BTreeMap<UserId, View>, clock: &mut u64, record: DurableRecord) {
    match record {
        DurableRecord::Event {
            user,
            timestamp,
            payload,
        } => {
            *clock = (*clock).max(timestamp.as_secs() + 1);
            index
                .entry(user)
                .or_insert_with(|| View::new(user))
                .push(Event::new(user, timestamp, payload));
        }
        DurableRecord::Batch { events } => {
            for event in events {
                *clock = (*clock).max(event.timestamp().as_secs() + 1);
                index
                    .entry(event.author())
                    .or_insert_with(|| View::new(event.author()))
                    .push(event);
            }
        }
        DurableRecord::Snapshot { view } => {
            for event in view.iter() {
                *clock = (*clock).max(event.timestamp().as_secs() + 1);
            }
            index.insert(view.owner(), view);
        }
        DurableRecord::Tombstone { user } => {
            index.remove(&user);
        }
    }
}

/// Replays every segment of `dir` in sequence order into a fresh index.
/// Returns the index, the recovered clock, per-segment valid lengths and the
/// aggregate stats. Only the last segment may carry a torn tail.
#[allow(clippy::type_complexity)]
fn replay_dir(
    dir: &Path,
) -> Result<(
    BTreeMap<UserId, View>,
    u64,
    Vec<(u64, PathBuf, u64)>,
    RecoveryStats,
)> {
    let segments = list_segments(dir)?;
    let mut index = BTreeMap::new();
    let mut clock = 0u64;
    let mut stats = RecoveryStats::default();
    let mut valid = Vec::with_capacity(segments.len());
    let last = segments.len().saturating_sub(1);
    for (i, (seq, path)) in segments.into_iter().enumerate() {
        let replay = replay_segment(&path, |record| apply_record(&mut index, &mut clock, record))?;
        if replay.torn_bytes > 0 && i != last {
            return Err(Error::CorruptRecord(format!(
                "{} is torn but is not the last segment; a crash only tears the tail of the log",
                path.display()
            )));
        }
        stats.bytes_replayed += replay.valid_bytes;
        stats.records_replayed += replay.records;
        stats.torn_bytes += replay.torn_bytes;
        stats.segments += 1;
        valid.push((seq, path, replay.valid_bytes));
    }
    Ok((index, clock, valid, stats))
}

impl LogStructuredStore {
    /// Opens the store in `dir` (created if missing), rebuilding the
    /// in-memory index by replaying every segment from disk. A torn tail in
    /// the last segment — the signature of a crash mid-append — is truncated
    /// away; [`recovery_stats`] reports how many bytes were replayed and how
    /// many were discarded.
    ///
    /// [`recovery_stats`]: LogStructuredStore::recovery_stats
    ///
    /// Opening claims exclusive ownership of the directory through its
    /// `LOCK` file: torn-tail repair physically truncates segment files, so
    /// two live owners would corrupt each other. A lock left by a dead
    /// process (a crash) is broken automatically; use
    /// [`read_back`](LogStructuredStore::read_back) to inspect a directory
    /// another instance owns.
    ///
    /// # Errors
    ///
    /// I/O errors, [`Error::InvalidConfig`] when the directory is locked by
    /// a live instance, and [`Error::CorruptRecord`] for damage a crash
    /// cannot produce (checksummed-but-malformed records, torn non-final
    /// segments, files that are not segments).
    pub fn open(dir: impl Into<PathBuf>, config: LogConfig) -> Result<Self> {
        let dir = dir.into();
        if let Some(gc) = config.group_commit {
            if config.sync_on_append {
                return Err(Error::invalid_config(
                    "sync_on_append and group_commit are mutually exclusive: syncing every \
                     append defeats the one-fsync-per-batch point of group commit",
                ));
            }
            if gc.max_batch_records == 0 {
                return Err(Error::invalid_config(
                    "group_commit.max_batch_records must be at least 1",
                ));
            }
            if gc.max_batch_bytes == 0 || gc.max_batch_bytes > MAX_RECORD_BYTES {
                return Err(Error::invalid_config(format!(
                    "group_commit.max_batch_bytes must be in 1..={MAX_RECORD_BYTES} \
                     (the frame cap), got {}",
                    gc.max_batch_bytes
                )));
            }
        }
        std::fs::create_dir_all(&dir)?;
        let lock_path = acquire_dir_lock(&dir)?;
        let opened = (|| {
            let (index, clock, segments, recovery) = replay_dir(&dir)?;
            let mut sealed = Vec::new();
            let mut next_seq = 1;
            let mut active = None;
            for (i, (seq, path, valid_bytes)) in segments.iter().enumerate() {
                next_seq = seq + 1;
                if i + 1 == segments.len() {
                    active = Some(Segment::reopen(&dir, *seq, *valid_bytes)?);
                } else {
                    sealed.push(SealedSegment {
                        path: path.clone(),
                        bytes: *valid_bytes,
                    });
                }
            }
            let active = match active {
                Some(segment) => segment,
                None => {
                    let segment = Segment::create(&dir, next_seq)?;
                    next_seq += 1;
                    segment
                }
            };
            Ok(LogStructuredStore {
                inner: Mutex::new(LogInner {
                    dir: dir.clone(),
                    config,
                    index,
                    clock,
                    active,
                    sealed,
                    next_seq,
                    recovery,
                    scratch: Vec::new(),
                    pending: Vec::new(),
                    pending_records: 0,
                    lock_path: lock_path.clone(),
                    obs: None,
                }),
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
            })
        })();
        if opened.is_err() {
            let _ = std::fs::remove_file(&lock_path);
        }
        opened
    }

    /// Non-destructively replays the segments of `dir` — no lock is taken,
    /// no torn tail is repaired, nothing is created — and returns the
    /// recovered state together with what the replay measured. This is the
    /// safe way to inspect a directory another instance may own (e.g. to
    /// verify after [`crate::Cluster::shutdown`] that every acknowledged
    /// write reached disk).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogStructuredStore::open`], minus the lock.
    pub fn read_back(dir: impl AsRef<Path>) -> Result<(BTreeMap<UserId, View>, RecoveryStats)> {
        let (index, _, _, stats) = replay_dir(dir.as_ref())?;
        Ok((index, stats))
    }

    /// Appends one event, shared by every public write path. `batched`
    /// routes the record into the pending group-commit frame (always true
    /// when [`LogConfig::group_commit`] is set; [`append_batch`] forces it
    /// even without). The payload is encoded directly from a borrow —
    /// exactly one copy, into the frame buffer — and then *moved* into the
    /// in-memory index, so the durable write path never duplicates the
    /// caller's bytes. Returns the view's new version.
    ///
    /// [`append_batch`]: LogStructuredStore::append_batch
    fn append_one(
        inner: &mut LogInner,
        user: UserId,
        payload: Vec<u8>,
        batched: bool,
    ) -> Result<u64> {
        let timestamp = SimTime::from_secs(inner.clock);
        inner.clock += 1;
        if batched {
            if inner.pending_records == 0 {
                DurableRecord::batch_begin(&mut inner.pending);
            }
            if let Err(first) =
                DurableRecord::batch_push(&mut inner.pending, user, timestamp, &payload)
            {
                // The open batch has no room left for this entry: commit it
                // and retry in a fresh frame. A second failure means the
                // entry alone can never fit and is rejected like any
                // oversized record — with the frame (and index) untouched.
                if inner.pending_records == 0 {
                    return Err(first);
                }
                Self::commit_pending_locked(inner)?;
                DurableRecord::batch_begin(&mut inner.pending);
                DurableRecord::batch_push(&mut inner.pending, user, timestamp, &payload)?;
            }
            inner.pending_records += 1;
        } else {
            inner.scratch.clear();
            DurableRecord::encode_event_into(&mut inner.scratch, user, timestamp, &payload)?;
            inner.active.append(&inner.scratch)?;
            if inner.config.sync_on_append {
                inner.active.sync()?;
            }
        }
        let view = inner.index.entry(user).or_insert_with(|| View::new(user));
        view.push(Event::new(user, timestamp, payload));
        let version = view.version();
        if batched {
            if let Some(gc) = inner.config.group_commit {
                if inner.pending_records >= gc.max_batch_records
                    || inner.pending.len() - RECORD_HEADER_BYTES >= gc.max_batch_bytes
                {
                    Self::commit_pending_locked(inner)?;
                }
            }
        } else {
            Self::maybe_rotate(inner)?;
        }
        Ok(version)
    }

    /// Writes the pending batch — if any — as one [`DurableRecord::Batch`]
    /// frame and makes it as durable as the configuration promises (fsynced
    /// under [`GroupCommitConfig::sync_on_commit`], OS-buffered otherwise;
    /// [`append_batch`] without group commit inherits
    /// [`LogConfig::sync_on_append`]). The frame buffer keeps its capacity
    /// for the next batch.
    ///
    /// [`append_batch`]: LogStructuredStore::append_batch
    fn commit_pending_locked(inner: &mut LogInner) -> Result<()> {
        if inner.pending_records == 0 {
            return Ok(());
        }
        DurableRecord::batch_finish(&mut inner.pending, inner.pending_records)?;
        inner.active.append(&inner.pending)?;
        let records = u64::from(inner.pending_records);
        inner.pending_records = 0;
        inner.pending.clear();
        if inner
            .config
            .group_commit
            .map_or(inner.config.sync_on_append, |gc| gc.sync_on_commit)
        {
            inner.active.sync()?;
        }
        if let Some(obs) = &inner.obs {
            // Fill ratio against the configured fill trigger; a forced batch
            // without group commit (append_batch) counts as a full frame.
            let fill_percent = match inner.config.group_commit {
                Some(gc) => {
                    ((records * 100) / u64::from(gc.max_batch_records.max(1))).min(100) as u8
                }
                None => 100,
            };
            obs.trace(TraceEventKind::GroupCommitFill {
                records,
                fill_percent,
            });
        }
        Self::maybe_rotate(inner)
    }

    /// Appends an event with `payload` to `user`'s view and returns the new
    /// version of the view. Without group commit the record is written to
    /// the active segment before the index is updated (and fsynced under
    /// [`sync_on_append`](LogConfig::sync_on_append)); with
    /// [`group_commit`](LogConfig::group_commit) it is *acknowledged* into
    /// the pending batch — immediately visible to [`fetch`], durable at the
    /// next commit.
    ///
    /// [`fetch`]: LogStructuredStore::fetch
    ///
    /// # Errors
    ///
    /// I/O errors from the segment write.
    pub fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let batched = inner.config.group_commit.is_some();
        Self::append_one(inner, user, payload, batched)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(inner.index.get(&user).expect("view just appended").clone())
    }

    /// [`append`](LogStructuredStore::append) minus the returned [`View`]
    /// clone: callers that only need the acknowledgement (the new version
    /// counter) skip copying the whole event list on every write — the
    /// difference between ~100k and >1M durable appends per second once the
    /// view fills up.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment write.
    pub fn append_version(&self, user: UserId, payload: Vec<u8>) -> Result<u64> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let batched = inner.config.group_commit.is_some();
        let version = Self::append_one(inner, user, payload, batched)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Appends many events under one lock acquisition, one batch frame and
    /// (at most) one fsync — even without [`LogConfig::group_commit`], the
    /// items share a [`DurableRecord::Batch`] and a single durability point
    /// ([`sync_on_append`](LogConfig::sync_on_append) then syncs once per
    /// *batch*, not per event). Returns the number of events appended.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment write; on error a prefix of the batch may
    /// be acknowledged in memory, but the on-disk frame is all-or-nothing.
    pub fn append_batch<I>(&self, items: I) -> Result<u64>
    where
        I: IntoIterator<Item = (UserId, Vec<u8>)>,
    {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut count = 0u64;
        for (user, payload) in items {
            Self::append_one(inner, user, payload, true)?;
            count += 1;
        }
        Self::commit_pending_locked(inner)?;
        self.writes.fetch_add(count, Ordering::Relaxed);
        Ok(count)
    }

    /// Commits the pending group-commit batch, if any — the hook the
    /// sharded store's flush-interval thread drives so an acknowledged
    /// append never waits longer than the interval for durability. Returns
    /// whether a batch was written.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment write or fsync.
    pub fn commit_pending(&self) -> Result<bool> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let had = inner.pending_records > 0;
        Self::commit_pending_locked(inner)?;
        Ok(had)
    }

    /// Events acknowledged into the pending batch and not yet committed to
    /// the active segment.
    pub fn pending_records(&self) -> u64 {
        u64::from(self.inner.lock().pending_records)
    }

    /// Fetches the current view of `user`, or an empty view if the user has
    /// never written (or was deleted).
    pub fn fetch(&self, user: UserId) -> View {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.lock();
        inner
            .index
            .get(&user)
            .cloned()
            .unwrap_or_else(|| View::new(user))
    }

    /// Deletes `user`'s view, appending a tombstone record so the deletion
    /// survives recovery. Deleting an absent view is a no-op.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment write.
    pub fn delete(&self, user: UserId) -> Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if inner.index.remove(&user).is_none() {
            return Ok(());
        }
        // Replay applies records in file order, so the batch holding this
        // user's earlier (acknowledged) appends must land before the
        // tombstone — otherwise a reopen would resurrect them.
        Self::commit_pending_locked(inner)?;
        inner.scratch.clear();
        DurableRecord::Tombstone { user }.encode_into(&mut inner.scratch)?;
        inner.active.append(&inner.scratch)?;
        if inner.config.sync_on_append {
            inner.active.sync()?;
        }
        Self::maybe_rotate(inner)
    }

    fn maybe_rotate(inner: &mut LogInner) -> Result<()> {
        if inner.active.len() < inner.config.segment_max_bytes {
            return Ok(());
        }
        // Seal the full segment — synced, so sealed segments are always
        // crash-clean — and start a fresh one.
        inner.active.sync()?;
        let fresh_seq = inner.next_seq;
        let fresh = Segment::create(&inner.dir, fresh_seq)?;
        inner.next_seq += 1;
        let sealed = std::mem::replace(&mut inner.active, fresh);
        inner.sealed.push(SealedSegment {
            path: sealed.path().to_path_buf(),
            bytes: sealed.len(),
        });
        if let Some(obs) = &inner.obs {
            obs.trace(TraceEventKind::SegmentRotated { segment: fresh_seq });
        }
        Ok(())
    }

    /// Commits the pending batch and pushes buffered appends to the
    /// operating system (they now survive a process crash, but not a
    /// machine crash).
    ///
    /// # Errors
    ///
    /// I/O errors from the flush.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        Self::commit_pending_locked(inner)?;
        inner.active.flush()
    }

    /// Commits the pending batch, flushes and fsyncs the active segment:
    /// everything *acknowledged* so far survives a machine crash.
    ///
    /// # Errors
    ///
    /// I/O errors from the flush or fsync.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        Self::commit_pending_locked(inner)?;
        inner.active.sync()
    }

    /// Fsyncs everything *committed* so far — without holding the store
    /// lock during the disk flush. The lock is taken only to push buffered
    /// bytes to the OS and duplicate the active segment's file handle; the
    /// fsync then runs on the duplicate, so concurrent appends keep flowing
    /// while the disk catches up. The pipelined half of group commit: the
    /// sharded store's flusher thread calls this so acknowledged batches
    /// become machine-durable on a bounded cadence that the write path
    /// never waits on.
    ///
    /// Unlike [`sync`](LogStructuredStore::sync), the open (pending) batch
    /// is *not* committed — records appended after the handle is taken may
    /// or may not be covered. Sealed segments are already fsynced at
    /// rotation, so syncing the active segment suffices.
    ///
    /// # Errors
    ///
    /// I/O errors from the flush, handle duplication, or fsync.
    pub fn sync_detached(&self) -> Result<()> {
        let file = self.inner.lock().active.detached_handle()?;
        file.sync_all()?;
        Ok(())
    }

    /// Rewrites the live state as snapshot records and drops the superseded
    /// history: every live view becomes one [`DurableRecord::Snapshot`] in
    /// fresh segments (written and fsynced under higher sequence numbers
    /// *before* the old segments are deleted, so a crash at any point
    /// replays to the same state), then a new empty active segment is
    /// started.
    ///
    /// # Errors
    ///
    /// I/O errors from writing the snapshot segments or deleting old ones.
    pub fn compact(&self) -> Result<CompactionStats> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        Self::commit_pending_locked(inner)?;
        inner.active.sync()?;
        let bytes_before = inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active.len();
        let segments_before = inner.sealed.len() + 1;
        let old_paths: Vec<PathBuf> = inner
            .sealed
            .iter()
            .map(|s| s.path.clone())
            .chain(std::iter::once(inner.active.path().to_path_buf()))
            .collect();

        // Write the live views, in deterministic user order, into fresh
        // snapshot segments, then a fresh active segment after them. If any
        // of it fails, every file created so far must be deleted before
        // returning: the store keeps appending to the *old* active segment,
        // whose sequence number is lower, so a durable orphan snapshot would
        // replay last on the next open and silently revert those appends.
        let mut compacted: Vec<SealedSegment> = Vec::new();
        let first_new_seq = inner.next_seq;
        let written = (|| -> Result<Segment> {
            let mut current = Segment::create(&inner.dir, inner.next_seq)?;
            inner.next_seq += 1;
            for view in inner.index.values() {
                inner.scratch.clear();
                DurableRecord::Snapshot { view: view.clone() }.encode_into(&mut inner.scratch)?;
                if current.len() + inner.scratch.len() as u64 > inner.config.segment_max_bytes
                    && current.len() > crate::segment::SEGMENT_MAGIC.len() as u64
                {
                    current.sync()?;
                    let fresh = Segment::create(&inner.dir, inner.next_seq)?;
                    inner.next_seq += 1;
                    let full = std::mem::replace(&mut current, fresh);
                    compacted.push(SealedSegment {
                        path: full.path().to_path_buf(),
                        bytes: full.len(),
                    });
                }
                current.append(&inner.scratch)?;
            }
            current.sync()?;
            compacted.push(SealedSegment {
                path: current.path().to_path_buf(),
                bytes: current.len(),
            });
            Segment::create(&inner.dir, inner.next_seq)
        })();
        let fresh_active = match written {
            Ok(segment) => segment,
            Err(e) => {
                // Undo: every segment this pass created has seq >=
                // first_new_seq; delete them all (best-effort) so nothing
                // with a higher sequence number than the still-active old
                // segment survives.
                for (seq, path) in list_segments(&inner.dir).unwrap_or_default() {
                    if seq >= first_new_seq {
                        let _ = std::fs::remove_file(&path);
                    }
                }
                return Err(e);
            }
        };
        inner.next_seq += 1;

        // Snapshots are durable; the history is now superseded. Swap the
        // in-memory state first, then delete the old files (replay stays
        // correct even if a deletion fails: old segments have lower seqs).
        inner.active = fresh_active;
        inner.sealed = compacted;
        for path in old_paths {
            std::fs::remove_file(&path)?;
        }
        let stats = CompactionStats {
            bytes_before,
            bytes_after: inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active.len(),
            segments_before,
            segments_after: inner.sealed.len() + 1,
        };
        if let Some(obs) = &inner.obs {
            obs.trace(TraceEventKind::CompactionRun {
                bytes_before: stats.bytes_before,
                bytes_after: stats.bytes_after,
            });
        }
        Ok(stats)
    }

    /// Re-reads the entire log from disk — exactly what crash recovery does
    /// — replacing the in-memory index with the replayed one, and returns
    /// what the replay measured. Dividing [`RecoveryStats::bytes_replayed`]
    /// by the wall-clock this call takes gives real recovery bandwidth.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogStructuredStore::open`].
    pub fn reread(&self) -> Result<RecoveryStats> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        Self::commit_pending_locked(inner)?;
        inner.active.sync()?;
        let (index, clock, _, stats) = replay_dir(&inner.dir)?;
        inner.index = index;
        inner.clock = inner.clock.max(clock);
        inner.recovery = stats;
        Ok(stats)
    }

    /// What the last [`open`](LogStructuredStore::open) or
    /// [`reread`](LogStructuredStore::reread) replayed.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.inner.lock().recovery
    }

    /// Logical size of the log on disk: sealed segment bytes plus the active
    /// segment (including appends still buffered in memory, which have a
    /// reserved place in the file). Appends acknowledged into the pending
    /// group-commit batch are *not* counted until the batch commits — they
    /// have no reserved place yet.
    pub fn bytes_on_disk(&self) -> u64 {
        let inner = self.inner.lock();
        inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active.len()
    }

    /// Number of segment files (sealed plus active).
    pub fn segment_count(&self) -> usize {
        self.inner.lock().sealed.len() + 1
    }

    /// Number of live views.
    pub fn user_count(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Directory holding the segment files.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }

    /// Installs a flight-recorder observer: from now on batch commits,
    /// segment rotations and compactions emit structured trace events
    /// through it. Without an observer those paths run exactly the
    /// unobserved code.
    pub fn set_observer(&self, obs: StoreObs) {
        self.inner.lock().obs = Some(obs);
    }

    /// Number of events appended so far (this process; replayed history is
    /// not counted).
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of fetches served.
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl Drop for LogStructuredStore {
    fn drop(&mut self) {
        // Best-effort teardown: commit the pending batch, push buffered
        // appends to the OS (the durability guarantee still belongs to
        // sync()) and release the directory lock so the next open is not
        // mistaken for a takeover.
        let inner = self.inner.get_mut();
        let _ = Self::commit_pending_locked(inner);
        let _ = inner.active.flush();
        let _ = std::fs::remove_file(&inner.lock_path);
    }
}

impl PersistentStore for LogStructuredStore {
    fn append(&self, user: UserId, payload: Vec<u8>) -> Result<View> {
        LogStructuredStore::append(self, user, payload)
    }

    fn fetch(&self, user: UserId) -> Result<View> {
        Ok(LogStructuredStore::fetch(self, user))
    }

    fn flush(&self) -> Result<()> {
        LogStructuredStore::flush(self)
    }

    fn sync(&self) -> Result<()> {
        LogStructuredStore::sync(self)
    }

    fn write_count(&self) -> u64 {
        LogStructuredStore::write_count(self)
    }

    fn read_count(&self) -> u64 {
        LogStructuredStore::read_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dynasore-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_segments() -> LogConfig {
        LogConfig {
            segment_max_bytes: 256,
            ..LogConfig::default()
        }
    }

    fn group_commit(max_batch_records: u32) -> LogConfig {
        LogConfig {
            group_commit: Some(GroupCommitConfig {
                max_batch_records,
                ..GroupCommitConfig::default()
            }),
            ..LogConfig::default()
        }
    }

    #[test]
    fn append_fetch_round_trips_and_survives_reopen() {
        let dir = temp_dir("reopen");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let u = UserId::new(3);
        assert!(store.fetch(u).is_empty());
        let v1 = store.append(u, b"a".to_vec()).unwrap();
        let v2 = store.append(u, b"b".to_vec()).unwrap();
        assert_eq!(v1.len(), 1);
        assert_eq!(v2.len(), 2);
        assert!(v2.version() > v1.version());
        assert_eq!(store.write_count(), 2);
        store.sync().unwrap();
        drop(store);

        let reopened = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let fetched = reopened.fetch(u);
        assert_eq!(
            fetched, v2,
            "recovered view must be identical, version included"
        );
        let stats = reopened.recovery_stats();
        assert_eq!(stats.records_replayed, 2);
        assert_eq!(stats.torn_bytes, 0);
        assert!(stats.bytes_replayed > 0);
        // The recovered clock keeps timestamps monotonic.
        let v3 = reopened.append(u, b"c".to_vec()).unwrap();
        let times: Vec<u64> = v3.iter().map(|e| e.timestamp().as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times: {times:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = temp_dir("rotate");
        let store = LogStructuredStore::open(&dir, tiny_segments()).unwrap();
        for i in 0..40u32 {
            store.append(UserId::new(i % 5), vec![i as u8; 20]).unwrap();
        }
        assert!(
            store.segment_count() > 1,
            "{} segments",
            store.segment_count()
        );
        store.sync().unwrap();
        drop(store);
        let reopened = LogStructuredStore::open(&dir, tiny_segments()).unwrap();
        assert_eq!(reopened.user_count(), 5);
        for i in 0..5u32 {
            assert_eq!(reopened.fetch(UserId::new(i)).len(), 8);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_is_durable_and_absent_delete_is_a_noop() {
        let dir = temp_dir("delete");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let u = UserId::new(1);
        store.append(u, b"x".to_vec()).unwrap();
        store.delete(u).unwrap();
        store.delete(UserId::new(99)).unwrap();
        assert!(store.fetch(u).is_empty());
        store.sync().unwrap();
        drop(store);
        let reopened = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        assert!(reopened.fetch(u).is_empty());
        assert_eq!(reopened.user_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_superseded_history() {
        let dir = temp_dir("compact");
        let store = LogStructuredStore::open(&dir, tiny_segments()).unwrap();
        for round in 0..30u32 {
            for user in 0..4u32 {
                store
                    .append(UserId::new(user), vec![round as u8; 16])
                    .unwrap();
            }
        }
        store.delete(UserId::new(3)).unwrap();
        let before: Vec<View> = (0..4).map(|u| store.fetch(UserId::new(u))).collect();
        let bytes_before = store.bytes_on_disk();
        let stats = store.compact().unwrap();
        assert_eq!(stats.bytes_before, bytes_before);
        assert!(
            stats.bytes_after < stats.bytes_before,
            "superseded records must shrink the log: {stats:?}"
        );
        let after: Vec<View> = (0..4).map(|u| store.fetch(UserId::new(u))).collect();
        assert_eq!(before, after);
        // The compacted state is what recovery sees.
        drop(store);
        let reopened = LogStructuredStore::open(&dir, tiny_segments()).unwrap();
        let replayed: Vec<View> = (0..4).map(|u| reopened.fetch(UserId::new(u))).collect();
        assert_eq!(before, replayed);
        assert_eq!(reopened.user_count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reread_reads_real_bytes() {
        let dir = temp_dir("reread");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        for i in 0..50u32 {
            store.append(UserId::new(i % 7), vec![i as u8; 64]).unwrap();
        }
        let stats = store.reread().unwrap();
        assert_eq!(stats.records_replayed, 50);
        assert_eq!(stats.bytes_replayed, store.bytes_on_disk());
        assert_eq!(store.user_count(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_buffered_appends_can_be_lost_but_synced_ones_cannot() {
        // This pins the durability contract the Cluster::shutdown fix relies
        // on: a (non-destructive) reader of the same directory sees only
        // what was flushed.
        let dir = temp_dir("durability");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let u = UserId::new(0);
        store.append(u, b"buffered".to_vec()).unwrap();
        let (index, _) = LogStructuredStore::read_back(&dir).unwrap();
        assert!(
            !index.contains_key(&u),
            "buffered appends must not be visible on disk yet"
        );
        store.sync().unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(index.get(&u).unwrap().len(), 1);
        assert_eq!(stats.records_replayed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_ownership_is_exclusive_and_crash_locks_are_broken() {
        let dir = temp_dir("lock");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        // A second live owner is refused: its repairs would corrupt ours.
        let second = LogStructuredStore::open(&dir, LogConfig::default());
        assert!(matches!(second, Err(Error::InvalidConfig(_))), "{second:?}");
        // read_back stays available for inspection.
        assert!(LogStructuredStore::read_back(&dir).is_ok());
        drop(store);
        // Dropping released the lock.
        let reopened = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        drop(reopened);
        // A stale lock from a crashed (dead-pid) owner is broken on open.
        std::fs::write(dir.join("LOCK"), "999999999").unwrap();
        let recovered = LogStructuredStore::open(&dir, LogConfig::default());
        assert!(recovered.is_ok(), "{recovered:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_acknowledges_immediately_and_commits_on_fill() {
        let dir = temp_dir("group-fill");
        let store = LogStructuredStore::open(&dir, group_commit(8)).unwrap();
        let u = UserId::new(1);
        for i in 0..11u32 {
            let version = store.append_version(u, vec![i as u8; 10]).unwrap();
            assert_eq!(version, u64::from(i) + 1, "acks are immediate");
        }
        // 8 appends filled one batch (committed + fsynced); 3 are pending.
        assert_eq!(store.pending_records(), 3);
        assert_eq!(store.fetch(u).len(), 11, "fetch sees acknowledged appends");
        let (index, _) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(
            index.get(&u).unwrap().len(),
            8,
            "only the committed batch is on disk"
        );
        // sync commits the stragglers; a reopen replays all 11 with the
        // version counter intact.
        store.sync().unwrap();
        assert_eq!(store.pending_records(), 0);
        drop(store);
        let reopened = LogStructuredStore::open(&dir, group_commit(8)).unwrap();
        let view = reopened.fetch(u);
        assert_eq!(view.len(), 11);
        assert_eq!(view.version(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_span_users_and_interleave_with_deletes() {
        let dir = temp_dir("group-mixed");
        let store = LogStructuredStore::open(&dir, group_commit(64)).unwrap();
        for i in 0..10u32 {
            store
                .append_version(UserId::new(i % 3), vec![i as u8; 6])
                .unwrap();
        }
        // The tombstone must land *after* the acknowledged appends, so the
        // delete forces the pending batch out first.
        store.delete(UserId::new(0)).unwrap();
        store
            .append_version(UserId::new(0), b"reborn".to_vec())
            .unwrap();
        store.sync().unwrap();
        drop(store);
        let reopened = LogStructuredStore::open(&dir, group_commit(64)).unwrap();
        let v0 = reopened.fetch(UserId::new(0));
        assert_eq!(v0.len(), 1, "delete dropped the pre-tombstone appends");
        assert_eq!(v0.latest().unwrap().payload(), b"reborn");
        assert_eq!(reopened.fetch(UserId::new(1)).len(), 3);
        assert_eq!(reopened.fetch(UserId::new(2)).len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_batch_shares_one_frame_even_without_group_commit() {
        let dir = temp_dir("append-batch");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let items: Vec<(UserId, Vec<u8>)> = (0..6u32)
            .map(|i| (UserId::new(i % 2), vec![i as u8; 12]))
            .collect();
        assert_eq!(store.append_batch(items).unwrap(), 6);
        assert_eq!(store.pending_records(), 0, "append_batch always commits");
        assert_eq!(store.write_count(), 6);
        store.sync().unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(index.get(&UserId::new(0)).unwrap().len(), 3);
        assert_eq!(index.get(&UserId::new(1)).unwrap().len(), 3);
        assert_eq!(
            stats.records_replayed, 1,
            "six events must share one batch record"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_config_is_validated() {
        let dir = temp_dir("group-validate");
        let both = LogStructuredStore::open(
            &dir,
            LogConfig {
                sync_on_append: true,
                group_commit: Some(GroupCommitConfig::default()),
                ..LogConfig::default()
            },
        );
        assert!(matches!(both, Err(Error::InvalidConfig(_))), "{both:?}");
        let zero = LogStructuredStore::open(&dir, group_commit(0));
        assert!(matches!(zero, Err(Error::InvalidConfig(_))), "{zero:?}");
        let oversized = LogStructuredStore::open(
            &dir,
            LogConfig {
                group_commit: Some(GroupCommitConfig {
                    max_batch_bytes: MAX_RECORD_BYTES + 1,
                    ..GroupCommitConfig::default()
                }),
                ..LogConfig::default()
            },
        );
        assert!(
            matches!(oversized, Err(Error::InvalidConfig(_))),
            "{oversized:?}"
        );
        // A rejected config must not leave a stray LOCK behind.
        let ok = LogStructuredStore::open(&dir, group_commit(4));
        assert!(ok.is_ok(), "{ok:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_commits_batches_and_the_frame_cap_forces_a_retry() {
        let dir = temp_dir("group-overflow");
        // Tiny byte budget: the batch commits every time the body crosses
        // 64 bytes — with 56-byte entries, after every second append.
        let store = LogStructuredStore::open(
            &dir,
            LogConfig {
                group_commit: Some(GroupCommitConfig {
                    max_batch_records: 1024,
                    max_batch_bytes: 64,
                    sync_on_commit: false,
                }),
                ..LogConfig::default()
            },
        )
        .unwrap();
        let u = UserId::new(7);
        for i in 0..5u32 {
            store.append_version(u, vec![i as u8; 40]).unwrap();
        }
        store.sync().unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(index.get(&u).unwrap().len(), 5);
        assert_eq!(
            stats.records_replayed, 3,
            "five appends against a 64-byte budget must commit as 2+2+1: {stats:?}"
        );
        drop(store);

        // The hard frame cap: an entry that cannot share the open batch
        // commits it and retries in a fresh frame, losing nothing. The byte
        // budget is set to the cap itself so only the cap can intervene.
        let dir2 = temp_dir("group-cap-retry");
        let store = LogStructuredStore::open(
            &dir2,
            LogConfig {
                group_commit: Some(GroupCommitConfig {
                    max_batch_records: 1024,
                    max_batch_bytes: MAX_RECORD_BYTES,
                    sync_on_commit: true,
                }),
                ..LogConfig::default()
            },
        )
        .unwrap();
        let big = MAX_RECORD_BYTES / 2;
        store.append_version(u, vec![1u8; big]).unwrap();
        assert_eq!(store.pending_records(), 1, "first entry stays pending");
        store.append_version(u, vec![2u8; big]).unwrap();
        store.sync().unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir2).unwrap();
        assert_eq!(index.get(&u).unwrap().len(), 2);
        assert_eq!(stats.records_replayed, 2, "one batch frame each: {stats:?}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn oversized_payloads_are_rejected_without_touching_the_log() {
        let dir = temp_dir("oversized");
        let store = LogStructuredStore::open(&dir, LogConfig::default()).unwrap();
        let u = UserId::new(1);
        store.append(u, b"small".to_vec()).unwrap();
        let err = store.append(u, vec![0u8; dynasore_types::MAX_RECORD_BYTES + 1]);
        assert!(matches!(err, Err(Error::InvalidConfig(_))), "{err:?}");
        // The rejected record left no bytes behind and the store still works.
        store.sync().unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(stats.torn_bytes, 0);
        assert_eq!(index.get(&u).unwrap().len(), 1);
        store.append(u, b"after".to_vec()).unwrap();
        assert_eq!(store.fetch(u).len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
