//! Cache-server threads.
//!
//! Each view server of the topology runs as one thread owning a plain
//! `HashMap<UserId, View>`. Brokers (which in the paper only orchestrate
//! requests) are folded into the client call path; the server threads are
//! the stateful part that benefits from isolation.

use std::collections::HashMap;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};

use dynasore_types::{MachineId, UserId, View};

/// Commands understood by a cache-server thread.
#[derive(Debug)]
pub(crate) enum ServerCommand {
    /// Return the cached view of a user, if present.
    Get(UserId, Sender<Option<View>>),
    /// Insert or refresh the cached view of a user (newer versions win).
    Put(UserId, View),
    /// Drop the cached view of a user (replica eviction).
    Evict(UserId),
    /// Return the number of cached views.
    Len(Sender<usize>),
    /// Stop the thread.
    Shutdown,
}

/// Handle to a running cache-server thread.
#[derive(Debug)]
pub(crate) struct ServerHandle {
    pub machine: MachineId,
    pub sender: Sender<ServerCommand>,
    pub join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Spawns the server thread for `machine`.
    pub fn spawn(machine: MachineId) -> ServerHandle {
        let (sender, receiver) = unbounded::<ServerCommand>();
        let join = std::thread::Builder::new()
            .name(format!("dynasore-server-{}", machine.index()))
            .spawn(move || {
                let mut views: HashMap<UserId, View> = HashMap::new();
                while let Ok(command) = receiver.recv() {
                    match command {
                        ServerCommand::Get(user, reply) => {
                            let _ = reply.send(views.get(&user).cloned());
                        }
                        ServerCommand::Put(user, view) => match views.get_mut(&user) {
                            Some(existing) => existing.replace_from(&view),
                            None => {
                                views.insert(user, view);
                            }
                        },
                        ServerCommand::Evict(user) => {
                            views.remove(&user);
                        }
                        ServerCommand::Len(reply) => {
                            let _ = reply.send(views.len());
                        }
                        ServerCommand::Shutdown => break,
                    }
                }
            })
            .expect("failed to spawn server thread");
        ServerHandle {
            machine,
            sender,
            join: Some(join),
        }
    }

    /// Fetches a cached view, blocking on the server thread.
    pub fn get(&self, user: UserId) -> Option<View> {
        let (reply, response) = bounded(1);
        if self.sender.send(ServerCommand::Get(user, reply)).is_err() {
            return None;
        }
        response.recv().ok().flatten()
    }

    /// Pushes a view into the cache.
    pub fn put(&self, user: UserId, view: View) {
        let _ = self.sender.send(ServerCommand::Put(user, view));
    }

    /// Removes a cached view.
    pub fn evict(&self, user: UserId) {
        let _ = self.sender.send(ServerCommand::Evict(user));
    }

    /// Number of views currently cached on this server.
    pub fn len(&self) -> usize {
        let (reply, response) = bounded(1);
        if self.sender.send(ServerCommand::Len(reply)).is_err() {
            return 0;
        }
        response.recv().unwrap_or(0)
    }

    /// Asks the thread to stop and waits for it.
    pub fn shutdown(&mut self) {
        let _ = self.sender.send(ServerCommand::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Destructors must not fail or block indefinitely: send the shutdown
        // command (ignoring errors) and detach if the thread already exited.
        let _ = self.sender.send(ServerCommand::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::{Event, SimTime};

    fn view_with(user: UserId, payload: &[u8], version_bumps: u32) -> View {
        let mut v = View::new(user);
        for i in 0..version_bumps {
            v.push(Event::new(
                user,
                SimTime::from_secs(i as u64),
                payload.to_vec(),
            ));
        }
        v
    }

    #[test]
    fn get_put_evict_round_trip() {
        let mut server = ServerHandle::spawn(MachineId::new(1));
        let u = UserId::new(5);
        assert!(server.get(u).is_none());
        server.put(u, view_with(u, b"x", 1));
        let cached = server.get(u).expect("cached view");
        assert_eq!(cached.len(), 1);
        assert_eq!(server.len(), 1);
        server.evict(u);
        assert!(server.get(u).is_none());
        assert_eq!(server.len(), 0);
        server.shutdown();
    }

    #[test]
    fn stale_puts_do_not_overwrite_newer_views() {
        let mut server = ServerHandle::spawn(MachineId::new(2));
        let u = UserId::new(1);
        server.put(u, view_with(u, b"new", 3));
        server.put(u, view_with(u, b"old", 1));
        let cached = server.get(u).unwrap();
        assert_eq!(cached.len(), 3);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = ServerHandle::spawn(MachineId::new(3));
        server.shutdown();
        server.shutdown();
        assert!(server.get(UserId::new(1)).is_none());
        assert_eq!(server.len(), 0);
    }
}
