//! # DynaSoRe
//!
//! A reproduction of *"DynaSoRe: Efficient In-Memory Store for Social
//! Applications"* (Bai, Jégou, Junqueira, Leroy — Middleware 2013).
//!
//! DynaSoRe is an in-memory view store for social applications. Each user has
//! a *producer-pivoted view* holding the events she produced; a read request
//! fetches the views of all of the user's social connections, a write request
//! updates the user's own view. The store spans many servers organised in a
//! data-centre network tree, and dynamically replicates, migrates and evicts
//! view replicas to minimise the traffic crossing the upper tiers of the
//! tree, subject to a global memory budget.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`types`] — identifiers, events, views, configuration, errors.
//! * [`graph`] — social-graph substrate and synthetic generators.
//! * [`partition`] — multilevel (METIS-like) and hierarchical partitioning.
//! * [`topology`] — data-centre tree/flat topologies and traffic accounting.
//! * [`workload`] — synthetic, diurnal and flash-event trace generators.
//! * [`sim`] — the cluster simulator used for every experiment in the paper.
//! * [`core`] — the DynaSoRe placement engine (the paper's contribution).
//! * [`baselines`] — Random, METIS, hierarchical METIS and SPAR baselines.
//! * [`store`] — a runnable multi-threaded in-memory store built on the
//!   placement engine.
//! * [`serve`] — the serving front-end: envelope pipeline with auth,
//!   admission control and flow budgets over the store.
//!
//! ## Quickstart
//!
//! ```
//! use dynasore::prelude::*;
//!
//! # fn main() -> Result<(), dynasore::types::Error> {
//! // A small social graph and the paper's cluster scaled down.
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 1_000, 42)?;
//! let topology = Topology::tree(2, 2, 5, 1)?;
//!
//! // DynaSoRe with 30% extra memory, warm-started from random placement.
//! let engine = DynaSoReEngine::builder()
//!     .topology(topology.clone())
//!     .budget(MemoryBudget::with_extra_percent(graph.user_count(), 30))
//!     .initial_placement(InitialPlacement::Random { seed: 7 })
//!     .build(&graph)?;
//!
//! // Drive it with one simulated day of synthetic traffic.
//! let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 42)?;
//! let mut sim = Simulation::new(topology, engine, &graph);
//! let report = sim.run(trace)?;
//! assert!(report.total_application_messages() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use dynasore_baselines as baselines;
pub use dynasore_core as core;
pub use dynasore_graph as graph;
pub use dynasore_partition as partition;
pub use dynasore_serve as serve;
pub use dynasore_sim as sim;
pub use dynasore_store as store;
pub use dynasore_topology as topology;
pub use dynasore_types as types;
pub use dynasore_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dynasore_baselines::{SparEngine, StaticPlacement};
    pub use dynasore_core::{DynaSoReConfig, DynaSoReEngine, InitialPlacement};
    pub use dynasore_graph::{GraphPreset, SocialGraph};
    pub use dynasore_partition::{Partitioner, Partitioning, TreeShape};
    pub use dynasore_serve::{
        LoopbackServer, Middleware, PipelineExecutor, RequestEnvelope, ResponseEnvelope,
        ServeConfig,
    };
    pub use dynasore_sim::{
        generate_failure_schedule, DegradationReport, DurableIoStats, DurableTier,
        FaultInjectionConfig, LatencyStats, MemoryUsage, Message, PlacementEngine,
        ReliabilityStats, ScenarioConfig, ScenarioKind, ScenarioRunner, ScenarioScript, SimReport,
        Simulation, SimulationConfig, TierReplay,
    };
    pub use dynasore_store::{
        Cluster, ClusterChangeReport, GroupCommitConfig, LogConfig, LogStructuredStore,
        PersistentStore, ShardedConfig, ShardedLogStore, SimDurableTier, StoreConfig,
    };
    pub use dynasore_topology::{Switch, Tier, Topology, TrafficAccount};
    pub use dynasore_types::{
        Bandwidth, ClusterEvent, Error, Event, FlowBudget, Latency, LatencyHistogram, MemoryBudget,
        NetworkModel, Operation, SimTime, StatusCode, TimedClusterEvent, UserId, View,
    };
    pub use dynasore_workload::{
        DiurnalConfig, DiurnalTraceGenerator, FlashEventPlan, Request, SyntheticConfig,
        SyntheticTraceGenerator,
    };
}
