//! End-to-end tests of the runnable store: correctness of the social-feed
//! semantics on top of dynamic replica placement, with both the in-memory
//! mock tier and the file-backed log-structured tier.

use std::sync::Arc;

use dynasore::prelude::*;
use dynasore::types::ClusterEvent;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dynasore-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_cluster(users: usize, seed: u64) -> (Cluster, SocialGraph) {
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, seed).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    let cluster = Cluster::spawn(
        &graph,
        topology,
        StoreConfig {
            extra_memory_percent: 50,
            placement: InitialPlacement::Metis { seed },
            seed,
        },
    )
    .unwrap();
    (cluster, graph)
}

#[test]
fn feeds_contain_exactly_the_followees_events_in_order() {
    let (mut cluster, graph) = spawn_cluster(300, 3);
    let reader = graph
        .users()
        .find(|&u| graph.followees(u).len() >= 2)
        .expect("reader with at least two followees");
    let followees = graph.followees(reader).to_vec();

    for (i, &followee) in followees.iter().enumerate() {
        cluster
            .write(followee, format!("post-{i}-from-{followee}").into_bytes())
            .unwrap();
    }
    // Someone the reader does not follow also posts; it must not leak into
    // the feed.
    let stranger = graph
        .users()
        .find(|&u| u != reader && !followees.contains(&u))
        .unwrap();
    cluster.write(stranger, b"noise".to_vec()).unwrap();

    let feed = cluster.read_feed(reader).unwrap();
    assert_eq!(feed.len(), followees.len());
    assert!(feed.iter().all(|e| followees.contains(&e.author())));
    // Newest first.
    assert!(feed
        .windows(2)
        .all(|w| w[0].timestamp() >= w[1].timestamp()));
    cluster.shutdown().unwrap();
}

#[test]
fn repeated_reads_are_served_from_cache() {
    let (mut cluster, graph) = spawn_cluster(300, 9);
    let reader = graph
        .users()
        .find(|&u| !graph.followees(u).is_empty())
        .unwrap();
    for _ in 0..5 {
        cluster.read_feed(reader).unwrap();
    }
    let stats = cluster.stats();
    assert!(
        stats.cache_hits > stats.cache_misses,
        "expected mostly cache hits, got {stats:?}"
    );
    cluster.shutdown().unwrap();
}

#[test]
fn hot_views_gain_replicas_in_the_live_store() {
    let (mut cluster, graph) = spawn_cluster(400, 13);
    // The most-followed user becomes hot: every follower refreshes her feed
    // repeatedly.
    let celebrity = graph
        .users()
        .max_by_key(|&u| graph.followers(u).len())
        .unwrap();
    cluster.write(celebrity, b"going viral".to_vec()).unwrap();
    let before = cluster.replica_count(celebrity);
    for _ in 0..30 {
        for &fan in graph.followers(celebrity) {
            cluster.read(fan, &[celebrity]).unwrap();
        }
    }
    let after = cluster.replica_count(celebrity);
    assert!(
        after >= before,
        "replication should not shrink under read pressure ({before} -> {after})"
    );
    // Reads still return the right content after any replication.
    let fan = graph.followers(celebrity)[0];
    let views = cluster.read(fan, &[celebrity]).unwrap();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].latest().unwrap().payload(), b"going viral");
    cluster.shutdown().unwrap();
}

#[test]
fn writes_remain_visible_after_heavy_mixed_traffic() {
    let (mut cluster, graph) = spawn_cluster(300, 21);
    let author = graph
        .users()
        .find(|&u| !graph.followers(u).is_empty())
        .unwrap();
    let reader = graph.followers(author)[0];
    for i in 0..50u32 {
        cluster
            .write(author, format!("update {i}").into_bytes())
            .unwrap();
        // Interleave unrelated traffic.
        let other = UserId::new(i % 300);
        let _ = cluster.read_feed(other);
    }
    let feed = cluster.read_feed(reader).unwrap();
    let latest_from_author = feed
        .iter()
        .find(|e| e.author() == author)
        .expect("author's events visible");
    assert_eq!(latest_from_author.payload(), b"update 49");
    cluster.shutdown().unwrap();
}

/// The file-backed variant of the kill/restart scenario from
/// `tests/fault_tolerance.rs`: a server thread is killed mid-traffic and
/// restarted against the on-disk tier. Reads keep returning the pre-crash
/// values throughout (availability stays 100%), served by demand-filling the
/// restarted cache from the log-structured store.
#[test]
fn file_backed_cluster_survives_kill_and_restart_mid_traffic() {
    let dir = temp_dir("kill-restart");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 3).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    let store = Arc::new(LogStructuredStore::open(&dir, LogConfig::default()).unwrap());
    let mut cluster = Cluster::spawn_with_store(
        &graph,
        topology,
        StoreConfig {
            extra_memory_percent: 50,
            placement: InitialPlacement::Metis { seed: 3 },
            seed: 3,
        },
        store.clone(),
    )
    .unwrap();

    let author = graph
        .users()
        .find(|&u| !graph.followers(u).is_empty())
        .unwrap();
    let reader = graph.followers(author)[0];
    for i in 0..20u32 {
        cluster
            .write(author, format!("pre-crash {i}").into_bytes())
            .unwrap();
    }

    // Kill server machines mid-traffic, rotating through the racks.
    cluster.read(reader, &[author]).unwrap(); // warm the routing
    let victim = cluster.topology().servers()[0].machine();
    let mut killed_and_restarted = 0;
    let mut latest_payload = b"pre-crash 19".to_vec();
    for round in 0..3u32 {
        let machine = if round == 0 {
            victim
        } else {
            cluster.topology().servers()[round as usize * 3].machine()
        };
        cluster
            .apply_event(ClusterEvent::MachineDown { machine })
            .unwrap();
        // Every read during the outage succeeds with the pre-crash values:
        // availability stays 100%.
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1, "read failed during outage round {round}");
        assert_eq!(
            views[0].latest().unwrap().payload(),
            latest_payload,
            "stale or lost data during outage round {round}"
        );
        // Interleave more traffic while the machine is down.
        latest_payload = format!("during-outage {round}").into_bytes();
        cluster.write(author, latest_payload.clone()).unwrap();
        cluster
            .apply_event(ClusterEvent::MachineUp { machine })
            .unwrap();
        killed_and_restarted += 1;
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(
            views[0].latest().unwrap().payload(),
            latest_payload,
            "restarted server served stale data"
        );
    }
    assert_eq!(killed_and_restarted, 3);
    let feed = cluster.read_feed(reader).unwrap();
    assert!(feed.iter().any(|e| e.payload() == b"during-outage 2"));
    // Demand-fills (never-written followees, caches emptied by the kills)
    // came from the file-backed tier.
    assert!(store.read_count() > 0);
    cluster.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The sharded tier drops into `Cluster::spawn_with_store` unchanged: the
/// same kill/restart choreography as the single-log test above, but with
/// writes fanning out over 4 shards (group commit on, background flusher
/// running). Availability stays 100% and restarted servers demand-fill from
/// the sharded tier.
#[test]
fn sharded_cluster_survives_kill_and_restart_mid_traffic() {
    let dir = temp_dir("sharded-kill-restart");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 5).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    let store = Arc::new(
        ShardedLogStore::open(
            &dir,
            ShardedConfig {
                shards: 4,
                ..ShardedConfig::default()
            },
        )
        .unwrap(),
    );
    assert_eq!(store.shard_count(), 4);
    let mut cluster = Cluster::spawn_with_store(
        &graph,
        topology,
        StoreConfig {
            extra_memory_percent: 50,
            placement: InitialPlacement::Metis { seed: 5 },
            seed: 5,
        },
        store.clone(),
    )
    .unwrap();

    let author = graph
        .users()
        .find(|&u| !graph.followers(u).is_empty())
        .unwrap();
    let reader = graph.followers(author)[0];
    // Spread traffic across every shard, not just the author's.
    for i in 0..40u32 {
        cluster
            .write(UserId::new(i % 300), format!("spread {i}").into_bytes())
            .unwrap();
    }
    cluster.write(author, b"pre-crash".to_vec()).unwrap();

    cluster.read(reader, &[author]).unwrap(); // warm the routing
    let mut latest_payload = b"pre-crash".to_vec();
    for round in 0..3u32 {
        let machine = cluster.topology().servers()[round as usize * 3].machine();
        cluster
            .apply_event(ClusterEvent::MachineDown { machine })
            .unwrap();
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(views.len(), 1, "read failed during outage round {round}");
        assert_eq!(
            views[0].latest().unwrap().payload(),
            latest_payload,
            "stale or lost data during outage round {round}"
        );
        latest_payload = format!("during-outage {round}").into_bytes();
        cluster.write(author, latest_payload.clone()).unwrap();
        cluster
            .apply_event(ClusterEvent::MachineUp { machine })
            .unwrap();
        let views = cluster.read(reader, &[author]).unwrap();
        assert_eq!(
            views[0].latest().unwrap().payload(),
            latest_payload,
            "restarted server served stale data"
        );
    }
    // Sweep every user's view: the kills emptied three machines' caches,
    // so some of these reads miss and demand-fill from the sharded tier.
    for u in 0..300u32 {
        let user = UserId::new(u);
        cluster.read(user, &[user]).unwrap();
    }
    let feed = cluster.read_feed(reader).unwrap();
    assert!(feed.iter().any(|e| e.payload() == b"during-outage 2"));
    assert!(store.read_count() > 0, "demand-fills must hit the tier");
    cluster.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `Cluster::shutdown` over the sharded tier: every acknowledged write —
/// including those sitting in per-shard group-commit batches — is on disk
/// afterwards, visible to a non-destructive `ShardedLogStore::read_back`.
#[test]
fn shutdown_flushes_every_shards_pending_batch() {
    let dir = temp_dir("sharded-shutdown");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 17).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    // No flusher and a fill trigger far above the write count: only the
    // explicit flush+sync in shutdown can move these batches to disk.
    let store = Arc::new(
        ShardedLogStore::open(
            &dir,
            ShardedConfig {
                shards: 4,
                flush_interval: None,
                ..ShardedConfig::default()
            },
        )
        .unwrap(),
    );
    let mut cluster =
        Cluster::spawn_with_store(&graph, topology, StoreConfig::default(), store.clone()).unwrap();
    let authors: Vec<UserId> = graph.users().take(12).collect();
    for (i, &author) in authors.iter().enumerate() {
        cluster
            .write(author, format!("durable {i}").into_bytes())
            .unwrap();
    }
    assert!(
        store.pending_records() > 0,
        "writes should be batched, not yet committed"
    );
    cluster.shutdown().unwrap();
    assert_eq!(store.pending_records(), 0);

    let (index, stats) = ShardedLogStore::read_back(&dir).unwrap();
    for (i, &author) in authors.iter().enumerate() {
        let view = index.get(&author).expect("author view on disk");
        assert_eq!(
            view.latest().map(|e| e.payload().to_vec()),
            Some(format!("durable {i}").into_bytes()),
            "acknowledged write for {author} lost across shutdown"
        );
    }
    assert_eq!(index.len(), authors.len());
    assert_eq!(stats.total.torn_bytes, 0);
    assert_eq!(stats.per_shard.len(), 4);
    drop(cluster);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression test for the shutdown fix: `Cluster::shutdown` must flush and
/// sync the persistent tier before joining the server threads, so a reopen
/// of the same directory — while the original store object is still alive
/// and holding its write buffers — sees every acknowledged write.
#[test]
fn shutdown_makes_every_acknowledged_write_visible_to_a_reopen() {
    let dir = temp_dir("shutdown-sync");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 7).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    // Buffered config: without the explicit flush+sync in shutdown, these
    // appends would still sit in the writer's buffer.
    let store = Arc::new(
        LogStructuredStore::open(
            &dir,
            LogConfig {
                segment_max_bytes: 4 << 20,
                sync_on_append: false,
                group_commit: None,
            },
        )
        .unwrap(),
    );
    let mut cluster =
        Cluster::spawn_with_store(&graph, topology, StoreConfig::default(), store.clone()).unwrap();
    let authors: Vec<UserId> = graph.users().take(10).collect();
    for (i, &author) in authors.iter().enumerate() {
        cluster
            .write(author, format!("durable {i}").into_bytes())
            .unwrap();
    }
    cluster.shutdown().unwrap();

    // Read the directory back while `store` (and its buffers) are still
    // alive — `read_back` replays the segment files non-destructively, so
    // only what shutdown flushed to disk is visible.
    let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
    for (i, &author) in authors.iter().enumerate() {
        let view = index.get(&author).expect("author view on disk");
        assert_eq!(
            view.latest().map(|e| e.payload().to_vec()),
            Some(format!("durable {i}").into_bytes()),
            "acknowledged write for {author} lost across shutdown"
        );
    }
    assert_eq!(index.len(), authors.len());
    assert_eq!(stats.torn_bytes, 0);
    drop(cluster);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A full stop-and-restart of the cluster over the same directory: the new
/// cluster's tier rebuilds its index from the old cluster's bytes, and the
/// feed semantics carry over.
#[test]
fn file_backed_cluster_restarts_from_real_bytes() {
    let dir = temp_dir("restart");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 250, 11).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    let author = graph
        .users()
        .find(|&u| !graph.followers(u).is_empty())
        .unwrap();
    let reader = graph.followers(author)[0];

    {
        let store = Arc::new(LogStructuredStore::open(&dir, LogConfig::default()).unwrap());
        let mut cluster =
            Cluster::spawn_with_store(&graph, topology.clone(), StoreConfig::default(), store)
                .unwrap();
        cluster.write(author, b"before restart".to_vec()).unwrap();
        cluster.shutdown().unwrap();
    }

    let store = Arc::new(LogStructuredStore::open(&dir, LogConfig::default()).unwrap());
    assert!(
        store.recovery_stats().bytes_replayed > 0,
        "restart must replay real bytes"
    );
    assert_eq!(store.recovery_stats().torn_bytes, 0);
    let mut cluster =
        Cluster::spawn_with_store(&graph, topology, StoreConfig::default(), store).unwrap();
    let views = cluster.read(reader, &[author]).unwrap();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].latest().unwrap().payload(), b"before restart");
    cluster.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
