//! End-to-end tests of the runnable store: correctness of the social-feed
//! semantics on top of dynamic replica placement.

use dynasore::prelude::*;

fn spawn_cluster(users: usize, seed: u64) -> (Cluster, SocialGraph) {
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, seed).unwrap();
    let topology = Topology::tree(2, 2, 4, 1).unwrap();
    let cluster = Cluster::spawn(
        &graph,
        topology,
        StoreConfig {
            extra_memory_percent: 50,
            placement: InitialPlacement::Metis { seed },
            seed,
        },
    )
    .unwrap();
    (cluster, graph)
}

#[test]
fn feeds_contain_exactly_the_followees_events_in_order() {
    let (mut cluster, graph) = spawn_cluster(300, 3);
    let reader = graph
        .users()
        .find(|&u| graph.followees(u).len() >= 2)
        .expect("reader with at least two followees");
    let followees = graph.followees(reader).to_vec();

    for (i, &followee) in followees.iter().enumerate() {
        cluster
            .write(followee, format!("post-{i}-from-{followee}").into_bytes())
            .unwrap();
    }
    // Someone the reader does not follow also posts; it must not leak into
    // the feed.
    let stranger = graph
        .users()
        .find(|&u| u != reader && !followees.contains(&u))
        .unwrap();
    cluster.write(stranger, b"noise".to_vec()).unwrap();

    let feed = cluster.read_feed(reader).unwrap();
    assert_eq!(feed.len(), followees.len());
    assert!(feed.iter().all(|e| followees.contains(&e.author())));
    // Newest first.
    assert!(feed
        .windows(2)
        .all(|w| w[0].timestamp() >= w[1].timestamp()));
    cluster.shutdown();
}

#[test]
fn repeated_reads_are_served_from_cache() {
    let (mut cluster, graph) = spawn_cluster(300, 9);
    let reader = graph
        .users()
        .find(|&u| !graph.followees(u).is_empty())
        .unwrap();
    for _ in 0..5 {
        cluster.read_feed(reader).unwrap();
    }
    let stats = cluster.stats();
    assert!(
        stats.cache_hits > stats.cache_misses,
        "expected mostly cache hits, got {stats:?}"
    );
    cluster.shutdown();
}

#[test]
fn hot_views_gain_replicas_in_the_live_store() {
    let (mut cluster, graph) = spawn_cluster(400, 13);
    // The most-followed user becomes hot: every follower refreshes her feed
    // repeatedly.
    let celebrity = graph
        .users()
        .max_by_key(|&u| graph.followers(u).len())
        .unwrap();
    cluster.write(celebrity, b"going viral".to_vec()).unwrap();
    let before = cluster.replica_count(celebrity);
    for _ in 0..30 {
        for &fan in graph.followers(celebrity) {
            cluster.read(fan, &[celebrity]).unwrap();
        }
    }
    let after = cluster.replica_count(celebrity);
    assert!(
        after >= before,
        "replication should not shrink under read pressure ({before} -> {after})"
    );
    // Reads still return the right content after any replication.
    let fan = graph.followers(celebrity)[0];
    let views = cluster.read(fan, &[celebrity]).unwrap();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].latest().unwrap().payload(), b"going viral");
    cluster.shutdown();
}

#[test]
fn writes_remain_visible_after_heavy_mixed_traffic() {
    let (mut cluster, graph) = spawn_cluster(300, 21);
    let author = graph
        .users()
        .find(|&u| !graph.followers(u).is_empty())
        .unwrap();
    let reader = graph.followers(author)[0];
    for i in 0..50u32 {
        cluster
            .write(author, format!("update {i}").into_bytes())
            .unwrap();
        // Interleave unrelated traffic.
        let other = UserId::new(i % 300);
        let _ = cluster.read_feed(other);
    }
    let feed = cluster.read_feed(reader).unwrap();
    let latest_from_author = feed
        .iter()
        .find(|e| e.author() == author)
        .expect("author's events visible");
    assert_eq!(latest_from_author.payload(), b"update 49");
    cluster.shutdown();
}
