//! Property-based equivalence guard for the time-aware network model.
//!
//! The degenerate infinite-capacity [`NetworkModel`] must be *exactly* the
//! historical unit-count accounting: for every engine (DynaSoRe, SPAR,
//! static) and every seeded workload, a simulation configured with
//! `NetworkModel::infinite()` must produce a byte-identical [`SimReport`]
//! to one that never mentions the model, and both must match a manual
//! replay that buffers every message and charges a model-free
//! [`TrafficAccount`] afterwards. This is what lets every pre-existing
//! experiment (flash crowds, rack failures, drains, elastic growth) keep
//! its measured numbers while the latency machinery rides along.

use dynasore::prelude::*;
use dynasore_types::MessageClass;
use proptest::prelude::*;

const USERS: usize = 120;

fn graph(seed: u64) -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, seed).unwrap()
}

fn topology() -> Topology {
    Topology::tree(2, 2, 4, 1).unwrap()
}

fn engines(graph: &SocialGraph, topology: &Topology, seed: u64) -> Vec<Box<dyn PlacementEngine>> {
    vec![
        Box::new(
            DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(MemoryBudget::with_extra_percent(USERS, 40))
                .initial_placement(InitialPlacement::Random { seed })
                .build(graph)
                .unwrap(),
        ),
        Box::new(
            SparEngine::new(
                graph,
                topology,
                MemoryBudget::with_extra_percent(USERS, 40),
                seed,
            )
            .unwrap(),
        ),
        Box::new(StaticPlacement::random(graph, topology, seed).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Unit-count runs and explicit infinite-model runs are byte-identical
    /// for all three engines, and the infinite model never fabricates
    /// latency.
    #[test]
    fn infinite_model_reproduces_unit_count_reports(seed in 0u64..1_000) {
        let graph = graph(seed);
        let topology = topology();
        for (unit_engine, modelled_engine) in
            engines(&graph, &topology, seed).into_iter().zip(engines(&graph, &topology, seed))
        {
            let name = unit_engine.name().to_string();
            let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed).unwrap();
            let unit_report = Simulation::new(topology.clone(), unit_engine, &graph)
                .run(trace)
                .unwrap();
            let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed).unwrap();
            let modelled_report = Simulation::new(topology.clone(), modelled_engine, &graph)
                .with_network(NetworkModel::infinite())
                .run(trace)
                .unwrap();
            prop_assert_eq!(&unit_report, &modelled_report, "{} diverged", name.clone());
            // Belt and braces: the debug rendering (every field, series and
            // histogram included) matches byte for byte.
            prop_assert_eq!(format!("{unit_report:?}"), format!("{modelled_report:?}"));
            prop_assert_eq!(unit_report.read_latency_p99(), Latency::ZERO, "{}", name.clone());
            prop_assert_eq!(unit_report.latency().max_queue_delay, Latency::ZERO);
            prop_assert_eq!(unit_report.max_switch_backlog(), 0);
            prop_assert!(!unit_report.congestion_collapsed(), "{}", name);
        }
    }

    /// The infinite-model simulation measures exactly what the historical
    /// Vec<Message>-buffered protocol measured: replaying the trace by hand
    /// and charging a model-free account afterwards lands on the same tier
    /// totals, grand total and message counts, for all three engines.
    #[test]
    fn infinite_model_matches_buffered_unit_replay(seed in 0u64..1_000) {
        let graph = graph(seed);
        let topology = topology();
        // One tick-free hour of trace, so the manual replay does not need
        // to reproduce the simulator's tick scheduling.
        let trace: Vec<Request> = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed)
            .unwrap()
            .filter(|r| r.time.as_secs() < 3_600)
            .collect();
        prop_assert!(!trace.is_empty(), "paper defaults always fill the first hour");
        for (sim_engine, mut replay_engine) in
            engines(&graph, &topology, seed).into_iter().zip(engines(&graph, &topology, seed))
        {
            let name = sim_engine.name().to_string();
            let report = Simulation::new(topology.clone(), sim_engine, &graph)
                .with_network(NetworkModel::infinite())
                .run(trace.clone())
                .unwrap();

            let mut account = TrafficAccount::hourly();
            let mut messages: Vec<Message> = Vec::new();
            let (mut app, mut proto) = (0u64, 0u64);
            for request in &trace {
                messages.clear();
                if request.is_read() {
                    let targets = graph.followees(request.user).to_vec();
                    replay_engine.handle_read(request.user, &targets, request.time, &mut messages);
                } else {
                    replay_engine.handle_write(request.user, request.time, &mut messages);
                }
                for message in &messages {
                    match message.class {
                        MessageClass::Application => app += 1,
                        MessageClass::Protocol => proto += 1,
                    }
                    if message.is_local() {
                        continue;
                    }
                    let path = topology.path_switches(message.from, message.to);
                    account.record(&path, message.class, request.time);
                }
            }

            prop_assert_eq!(report.total_application_messages(), app, "{}", name.clone());
            prop_assert_eq!(report.total_protocol_messages(), proto, "{}", name.clone());
            for tier in Tier::all() {
                prop_assert_eq!(
                    report.traffic().tier_total(tier),
                    account.tier_total(tier),
                    "{}: tier {} totals diverge", name.clone(), tier
                );
            }
            prop_assert_eq!(report.traffic().grand_total(), account.grand_total());
            prop_assert_eq!(report.traffic().message_count(), account.message_count());
        }
    }
}

/// A finite model changes *when* messages get through, never *what* crosses
/// a switch — as long as the engine does not act on congestion feedback.
/// SPAR and static placement ignore the signal entirely; DynaSoRe matches
/// unit totals once its congestion penalty is disabled, and with the
/// penalty active its placement legitimately diverges (that divergence *is*
/// congestion-aware placement). All timed runs gain nonzero percentiles.
#[test]
fn finite_model_keeps_unit_totals_and_adds_latency() {
    let seed = 42;
    let graph = graph(seed);
    let topology = topology();
    let model = NetworkModel {
        top_service: Bandwidth::units_per_sec(5_000),
        intermediate_service: Bandwidth::units_per_sec(2_000),
        rack_service: Bandwidth::units_per_sec(1_000),
        hop_latency: Latency::from_micros(5),
        collapse_threshold: Latency::from_secs(1),
    };
    let dynasore_without_feedback = |penalty: f64| -> Box<dyn PlacementEngine> {
        Box::new(
            DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(MemoryBudget::with_extra_percent(USERS, 40))
                .initial_placement(InitialPlacement::Random { seed })
                .congestion_penalty_per_sec(penalty)
                .build(&graph)
                .unwrap(),
        )
    };
    let mut pairs: Vec<(Box<dyn PlacementEngine>, Box<dyn PlacementEngine>)> = vec![(
        dynasore_without_feedback(0.0),
        dynasore_without_feedback(0.0),
    )];
    pairs.extend(
        engines(&graph, &topology, seed)
            .into_iter()
            .zip(engines(&graph, &topology, seed))
            .skip(1), // skip the feedback-enabled DynaSoRe pair
    );
    for (unit_engine, timed_engine) in pairs {
        let name = unit_engine.name().to_string();
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed).unwrap();
        let unit_report = Simulation::new(topology.clone(), unit_engine, &graph)
            .run(trace)
            .unwrap();
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed).unwrap();
        let timed_report = Simulation::new(topology.clone(), timed_engine, &graph)
            .with_network(model)
            .run(trace)
            .unwrap();
        assert_eq!(
            unit_report.traffic().grand_total(),
            timed_report.traffic().grand_total(),
            "{name}: the time model must not change unit totals"
        );
        assert!(
            timed_report.read_latency_p50() > Latency::ZERO,
            "{name}: reads over slow switches must take time"
        );
        assert!(timed_report.read_latency_p99() >= timed_report.read_latency_p95());
        assert!(timed_report.read_latency_p95() >= timed_report.read_latency_p50());
    }

    // With the default penalty active, congestion feedback is allowed to
    // steer placement — the run stays deterministic but may spend traffic
    // differently. Pin only that it executes and measures.
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed).unwrap();
    let feedback_report = Simulation::new(
        topology.clone(),
        engines(&graph, &topology, seed).remove(0),
        &graph,
    )
    .with_network(model)
    .run(trace)
    .unwrap();
    assert!(feedback_report.read_latency_p50() > Latency::ZERO);
}
