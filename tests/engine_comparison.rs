//! Cross-crate integration tests: drive every placement engine through the
//! simulator on the same workload and check that the qualitative results of
//! the paper hold (who wins, and in which direction more memory helps).

use dynasore::prelude::*;

const USERS: usize = 1_500;
const SEED: u64 = 77;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    // A scaled-down version of the paper's cluster: 3 intermediate switches,
    // 3 racks each, 1 broker + 3 servers per rack.
    Topology::tree(3, 3, 4, 1).unwrap()
}

/// Runs `engine` over `days` of synthetic traffic after a one-day warm-up
/// (the paper measures traffic after convergence).
fn run_after_warmup<E: PlacementEngine>(engine: E, days: u64) -> SimReport {
    let graph = graph();
    let topology = topology();
    let mut sim = Simulation::new(topology, engine, &graph);
    let warmup = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
    sim.run(warmup).unwrap();
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, days, SEED + 1).unwrap();
    sim.run(trace).unwrap()
}

fn dynasore(extra: u32, placement: InitialPlacement) -> DynaSoReEngine {
    DynaSoReEngine::builder()
        .topology(topology())
        .budget(MemoryBudget::with_extra_percent(USERS, extra))
        .initial_placement(placement)
        .build(&graph())
        .unwrap()
}

#[test]
fn all_engines_process_the_same_number_of_requests() {
    let g = graph();
    let t = topology();
    let trace: Vec<Request> = SyntheticTraceGenerator::paper_defaults(&g, 1, SEED)
        .unwrap()
        .collect();
    let expected = trace.len() as u64;

    let engines: Vec<Box<dyn PlacementEngine>> = vec![
        Box::new(StaticPlacement::random(&g, &t, SEED).unwrap()),
        Box::new(StaticPlacement::metis(&g, &t, SEED).unwrap()),
        Box::new(StaticPlacement::hierarchical_metis(&g, &t, SEED).unwrap()),
        Box::new(
            SparEngine::new(&g, &t, MemoryBudget::with_extra_percent(USERS, 30), SEED).unwrap(),
        ),
        Box::new(dynasore(30, InitialPlacement::Random { seed: SEED })),
    ];
    for engine in engines {
        let name = engine.name().to_string();
        let mut sim = Simulation::new(t.clone(), engine, &g);
        let report = sim.run(trace.clone()).unwrap();
        assert_eq!(
            report.read_count() + report.write_count(),
            expected,
            "{name} dropped requests"
        );
        assert!(report.top_switch_total() > 0, "{name} produced no traffic");
    }
}

#[test]
fn partitioning_beats_random_and_hierarchical_beats_flat() {
    let g = graph();
    let t = topology();
    let random = run_after_warmup(StaticPlacement::random(&g, &t, SEED).unwrap(), 1);
    let metis = run_after_warmup(StaticPlacement::metis(&g, &t, SEED).unwrap(), 1);
    let hmetis = run_after_warmup(
        StaticPlacement::hierarchical_metis(&g, &t, SEED).unwrap(),
        1,
    );

    let metis_norm = metis.normalized_top_traffic(&random);
    let hmetis_norm = hmetis.normalized_top_traffic(&random);
    assert!(metis_norm < 1.0, "METIS should beat random: {metis_norm}");
    assert!(
        hmetis_norm < metis_norm,
        "hierarchical METIS ({hmetis_norm}) should beat flat METIS ({metis_norm}) at the top switch"
    );
}

#[test]
fn dynasore_beats_every_baseline_at_30_percent_extra_memory() {
    let g = graph();
    let t = topology();
    let random = run_after_warmup(StaticPlacement::random(&g, &t, SEED).unwrap(), 1);
    let spar = run_after_warmup(
        SparEngine::new(&g, &t, MemoryBudget::with_extra_percent(USERS, 30), SEED).unwrap(),
        1,
    );
    let dyna = run_after_warmup(
        dynasore(30, InitialPlacement::HierarchicalMetis { seed: SEED }),
        1,
    );

    let spar_norm = spar.normalized_top_traffic(&random);
    let dyna_norm = dyna.normalized_top_traffic(&random);
    assert!(
        dyna_norm < spar_norm,
        "DynaSoRe ({dyna_norm:.3}) should beat SPAR ({spar_norm:.3})"
    );
    assert!(
        dyna_norm < 0.6,
        "DynaSoRe with 30% extra memory should cut top-switch traffic substantially: {dyna_norm:.3}"
    );
}

#[test]
fn more_memory_never_hurts_dynasore() {
    let low = run_after_warmup(dynasore(0, InitialPlacement::Random { seed: SEED }), 1);
    let mid = run_after_warmup(dynasore(50, InitialPlacement::Random { seed: SEED }), 1);
    let high = run_after_warmup(dynasore(150, InitialPlacement::Random { seed: SEED }), 1);
    let random = run_after_warmup(
        StaticPlacement::random(&graph(), &topology(), SEED).unwrap(),
        1,
    );
    let low_n = low.normalized_top_traffic(&random);
    let mid_n = mid.normalized_top_traffic(&random);
    let high_n = high.normalized_top_traffic(&random);
    assert!(mid_n <= low_n * 1.05, "50% ({mid_n}) vs 0% ({low_n})");
    assert!(high_n <= mid_n * 1.05, "150% ({high_n}) vs 50% ({mid_n})");
}

#[test]
fn dynasore_lowers_traffic_at_every_tier_not_just_the_top() {
    let g = graph();
    let t = topology();
    let random = run_after_warmup(StaticPlacement::random(&g, &t, SEED).unwrap(), 1);
    let dyna = run_after_warmup(
        dynasore(50, InitialPlacement::HierarchicalMetis { seed: SEED }),
        1,
    );
    for tier in [Tier::Top, Tier::Intermediate, Tier::Rack] {
        let norm = dyna.normalized_tier_average(tier, &random);
        assert!(
            norm < 1.0,
            "DynaSoRe should not increase {tier} traffic (got {norm:.3})"
        );
    }
    // The reduction is strongest at the top of the tree (Table 2's shape).
    assert!(
        dyna.normalized_tier_average(Tier::Top, &random)
            <= dyna.normalized_tier_average(Tier::Rack, &random)
    );
}

#[test]
fn memory_budget_is_respected_after_a_full_run() {
    let engine = dynasore(30, InitialPlacement::Random { seed: SEED });
    let g = graph();
    let t = topology();
    let mut sim = Simulation::new(t, engine, &g);
    let trace = SyntheticTraceGenerator::paper_defaults(&g, 2, SEED).unwrap();
    let report = sim.run(trace).unwrap();
    let usage = report.memory_usage();
    assert!(usage.used_slots <= usage.capacity_slots);
    // Every view still has at least one replica.
    for user in g.users() {
        assert!(sim.engine().replica_count(user) >= 1, "view of {user} lost");
    }
}
