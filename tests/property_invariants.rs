//! Property-based tests of the core invariants, using `proptest`.
//!
//! These cover the guarantees the paper relies on implicitly:
//! * the partitioner always produces a balanced, complete assignment;
//! * the topology's distances and switch paths agree and behave like a tree
//!   metric;
//! * trace generators produce time-ordered requests over valid users;
//! * after any request sequence, DynaSoRe never loses a view and never
//!   exceeds any server's capacity.

use dynasore::prelude::*;
use proptest::prelude::*;

/// A small deterministic graph family driven by proptest inputs.
fn arbitrary_graph(users: usize, edges: &[(u32, u32)]) -> SocialGraph {
    let mut g = SocialGraph::new(users);
    for &(a, b) in edges {
        let u = UserId::new(a % users as u32);
        let v = UserId::new(b % users as u32);
        let _ = g.try_add_edge(u, v);
    }
    // Ensure nobody is isolated so that reads always have targets.
    for u in 0..users as u32 {
        let user = UserId::new(u);
        if g.out_degree(user) == 0 {
            let other = UserId::new((u + 1) % users as u32);
            let _ = g.try_add_edge(user, other);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioner_assigns_every_user_within_balance(
        seed in 0u64..1_000,
        parts in 2usize..7,
        edges in proptest::collection::vec((0u32..120, 0u32..120), 60..400),
    ) {
        let graph = arbitrary_graph(120, &edges);
        let partitioning = Partitioner::new(parts)
            .imbalance(0.10)
            .seed(seed)
            .partition(&graph)
            .unwrap();
        prop_assert_eq!(partitioning.user_count(), 120);
        prop_assert_eq!(partitioning.part_sizes().iter().sum::<usize>(), 120);
        // Every user is assigned to a valid part.
        for u in graph.users() {
            prop_assert!(partitioning.part_of(u) < parts);
        }
        // Balance within tolerance plus integer slack.
        let ideal = 120f64 / parts as f64;
        prop_assert!(
            partitioning.max_part_size() as f64 <= ideal * 1.10 + 1.0,
            "max part {} vs ideal {}", partitioning.max_part_size(), ideal
        );
    }

    #[test]
    fn tree_distances_match_switch_paths(
        inter in 1usize..5,
        racks in 1usize..5,
        machines in 2usize..6,
        a_pick in 0usize..1_000,
        b_pick in 0usize..1_000,
    ) {
        let topo = Topology::tree(inter, racks, machines, 1).unwrap();
        let n = topo.machine_count();
        let a = dynasore::types::MachineId::new((a_pick % n) as u32);
        let b = dynasore::types::MachineId::new((b_pick % n) as u32);
        let d_ab = topo.distance(a, b);
        let d_ba = topo.distance(b, a);
        prop_assert_eq!(d_ab, d_ba, "distance must be symmetric");
        prop_assert_eq!(topo.path_switches(a, b).len() as u32, d_ab);
        prop_assert!(d_ab <= 5);
        if a == b {
            prop_assert_eq!(d_ab, 0);
        } else {
            prop_assert!(d_ab >= 1);
            prop_assert!(d_ab % 2 == 1, "tree distances are 1, 3 or 5 switches");
        }
    }

    #[test]
    fn synthetic_traces_are_ordered_and_reference_valid_users(
        users in 20usize..100,
        days in 1u64..3,
        seed in 0u64..500,
    ) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, seed).unwrap();
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, days, seed).unwrap();
        let mut last = SimTime::ZERO;
        let mut count = 0u64;
        for request in trace {
            prop_assert!(request.time >= last);
            prop_assert!(graph.contains_user(request.user));
            prop_assert!(request.time.as_secs() < days * 86_400);
            last = request.time;
            count += 1;
        }
        prop_assert_eq!(count, (users as u64) * days * 5);
    }

    #[test]
    fn workload_samplers_are_deterministic_and_time_ordered(
        users in 20usize..100,
        days in 1u64..3,
        seed in 0u64..500,
    ) {
        // Failure schedules interleave with generated traces by timestamp,
        // so reproducible fault experiments need every sampler to be a pure
        // function of its seed AND to emit time-ordered requests. Pin both
        // properties for each generator family.
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, seed).unwrap();

        // Synthetic: identical replay, different seed diverges.
        let a: Vec<_> = SyntheticTraceGenerator::paper_defaults(&graph, days, seed)
            .unwrap()
            .collect();
        let b: Vec<_> = SyntheticTraceGenerator::paper_defaults(&graph, days, seed)
            .unwrap()
            .collect();
        prop_assert_eq!(&a, &b);
        let other: Vec<_> = SyntheticTraceGenerator::paper_defaults(&graph, days, seed + 1)
            .unwrap()
            .collect();
        prop_assert!(a != other, "different seeds must diverge");
        prop_assert!(a.windows(2).all(|w| w[0].time <= w[1].time));

        // Diurnal: same contract despite the non-homogeneous clock.
        let config = DiurnalConfig { days, ..DiurnalConfig::default() };
        let a: Vec<_> = DiurnalTraceGenerator::new(&graph, config, seed).unwrap().collect();
        let b: Vec<_> = DiurnalTraceGenerator::new(&graph, config, seed).unwrap().collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(a.iter().all(|r| graph.contains_user(r.user)));

        // Flash events: same plan per seed, time-ordered mutations. Dense
        // little graphs may leave few non-followers, so size the spike to
        // what is available.
        let target = UserId::new(seed as u32 % users as u32);
        let existing: std::collections::HashSet<UserId> =
            graph.followers(target).iter().copied().collect();
        let candidates = graph
            .users()
            .filter(|&u| u != target && !existing.contains(&u))
            .count();
        if candidates > 0 {
            let spike = candidates.min(5);
            let plan_a = FlashEventPlan::random(
                &graph,
                target,
                spike,
                SimTime::from_hours(1),
                SimTime::from_hours(20),
                seed,
            )
            .unwrap();
            let plan_b = FlashEventPlan::random(
                &graph,
                target,
                spike,
                SimTime::from_hours(1),
                SimTime::from_hours(20),
                seed,
            )
            .unwrap();
            prop_assert_eq!(&plan_a, &plan_b);
            let muts = plan_a.mutations();
            prop_assert!(muts.windows(2).all(|w| w[0].time <= w[1].time));
        }
    }

    #[test]
    fn dynasore_survives_arbitrary_failure_sequences(
        seed in 0u64..100,
        events in proptest::collection::vec((0u32..12, 0usize..5), 1..12),
    ) {
        // Random walks over the event space: whatever order machines fail,
        // recover, drain or racks get added, no view is ever lost for good
        // as long as at least one server lives, and reads stay available.
        let users = 80usize;
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, seed).unwrap();
        let topology = Topology::tree(2, 2, 3, 1).unwrap(); // 8 servers
        let mut engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(users, 100))
            .initial_placement(InitialPlacement::Random { seed })
            .build(&graph)
            .unwrap();
        let mut out = Vec::new();
        let mut time = 0u64;
        for &(machine_pick, kind) in &events {
            time += 600;
            let machine = dynasore::types::MachineId::new(machine_pick);
            let event = match kind {
                0 => ClusterEvent::MachineDown { machine },
                1 => ClusterEvent::MachineUp { machine },
                2 => ClusterEvent::DrainMachine { machine },
                3 => ClusterEvent::RackDown {
                    rack: dynasore::types::RackId::new(machine_pick % 4),
                },
                _ => ClusterEvent::RackUp {
                    rack: dynasore::types::RackId::new(machine_pick % 4),
                },
            };
            engine.on_cluster_change(event, SimTime::from_secs(time), &mut out);
            out.clear();
            // Interleave some traffic.
            let user = UserId::new((time % users as u64) as u32);
            let targets = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(time), &mut out);
            out.clear();
        }
        // Revive everything: full availability must return.
        for rack in 0..topology.rack_count() as u32 {
            engine.on_cluster_change(
                ClusterEvent::RackUp {
                    rack: dynasore::types::RackId::new(rack),
                },
                SimTime::from_secs(time + 600),
                &mut out,
            );
        }
        for u in graph.users() {
            prop_assert!(engine.replica_count(u) >= 1, "view of {} lost", u);
        }
        let usage = engine.memory_usage();
        prop_assert!(usage.used_slots <= usage.capacity_slots);
    }

    #[test]
    fn dynasore_never_loses_views_nor_overflows_servers(
        seed in 0u64..200,
        extra in 0u32..120,
        edges in proptest::collection::vec((0u32..80, 0u32..80), 40..200),
        requests in proptest::collection::vec((0u32..80, proptest::bool::ANY), 30..120),
    ) {
        let users = 80usize;
        let graph = arbitrary_graph(users, &edges);
        let topology = Topology::tree(2, 2, 3, 1).unwrap();
        let mut engine = DynaSoReEngine::builder()
            .topology(topology)
            .budget(MemoryBudget::with_extra_percent(users, extra))
            .initial_placement(InitialPlacement::Random { seed })
            .build(&graph)
            .unwrap();
        let capacity = engine.capacity_per_server();

        let mut out = Vec::new();
        let mut time = 0u64;
        for &(user_raw, is_read) in &requests {
            let user = UserId::new(user_raw % users as u32);
            time += 60;
            out.clear();
            if is_read {
                let targets = graph.followees(user).to_vec();
                engine.handle_read(user, &targets, SimTime::from_secs(time), &mut out);
            } else {
                engine.handle_write(user, SimTime::from_secs(time), &mut out);
            }
            if time % 3_600 == 0 {
                engine.on_tick(SimTime::from_secs(time), &mut out);
            }
        }
        engine.on_tick(SimTime::from_secs(time + 3_600), &mut out);

        // Invariant 1: every view keeps at least one replica.
        for u in graph.users() {
            prop_assert!(engine.replica_count(u) >= 1, "view of {} lost", u);
        }
        // Invariant 2: no server exceeds its capacity.
        let usage = engine.memory_usage();
        prop_assert!(usage.used_slots <= usage.capacity_slots);
        for (machine, occupancy) in engine.server_occupancies() {
            prop_assert!(occupancy <= 1.0 + 1e-9, "{} over capacity ({})", machine, occupancy);
        }
        // Invariant 3: replica counts are consistent with capacity.
        prop_assert!(usage.used_slots >= users);
        prop_assert!(usage.capacity_slots >= capacity);
    }

    #[test]
    fn spar_respects_capacity_for_any_budget(
        seed in 0u64..200,
        extra in 0u32..200,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 30..150),
    ) {
        let users = 60usize;
        let graph = arbitrary_graph(users, &edges);
        let topology = Topology::tree(2, 2, 3, 1).unwrap();
        let budget = MemoryBudget::with_extra_percent(users, extra);
        let spar = SparEngine::new(&graph, &topology, budget, seed).unwrap();
        let usage = spar.memory_usage();
        prop_assert!(usage.used_slots <= usage.capacity_slots);
        for u in graph.users() {
            prop_assert!(spar.replica_count(u) >= 1);
        }
    }
}
