//! Adversarial-scenario integration: the scripted scenario engine is
//! seed-deterministic end to end, a rack can be decommissioned (and the
//! cluster re-grown) mid-run without losing a single view, a removal
//! landing mid-drain stays graceful, and every write acknowledged before an
//! elastic shrink survives a cold reopen of the sharded durable tier.

use std::collections::BTreeMap;

use dynasore::prelude::*;
use dynasore::store::SIM_EVENT_BYTES;
use dynasore::types::{MachineId, RackId};

const USERS: usize = 500;
const SEED: u64 = 19;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    Topology::tree(3, 2, 4, 1).unwrap() // 6 racks, 18 servers, 6 brokers.
}

fn dynasore(graph: &SocialGraph, topology: &Topology) -> DynaSoReEngine {
    DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(USERS, 50))
        .initial_placement(InitialPlacement::Random { seed: SEED })
        .build(graph)
        .unwrap()
}

fn runner() -> ScenarioRunner {
    ScenarioRunner::new(
        ScenarioConfig {
            seed: SEED,
            days: 1,
            ..ScenarioConfig::default()
        },
        SimulationConfig::default(),
    )
}

/// The full scenario pipeline — script expansion, simulation, degradation
/// scoring — is a pure function of the seed: two runs of the same scenario
/// produce identical [`DegradationReport`]s, embedded [`SimReport`]
/// included.
#[test]
fn scenario_runs_are_seed_deterministic() {
    let graph = graph();
    let topology = topology();
    let runner = runner();
    for kind in [
        ScenarioKind::HotKeyFlood,
        ScenarioKind::DecommissionUnderLoad,
    ] {
        let run = || {
            let quiet = runner
                .quiet_baseline(topology.clone(), &graph, dynasore(&graph, &topology))
                .unwrap();
            runner
                .run(
                    kind,
                    topology.clone(),
                    &graph,
                    dynasore(&graph, &topology),
                    &quiet,
                    None,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{} must be seed-deterministic", kind.name());
        assert!(a.report.read_count() > 0);
        assert!(a.availability > 0.0);
    }
}

/// Elastic shrink then re-growth: decommission the last rack mid-run, add a
/// fresh rack later. The retired rack never rejoins (dense indices are
/// kept, the liveness mask does the retiring), the new rack extends the
/// index space, no view is ever lost, and the whole schedule replays
/// byte-identically under the same seed.
#[test]
fn remove_then_re_add_is_deterministic_and_lossless() {
    let graph = graph();
    let topology = topology();
    let doomed = RackId::new((topology.rack_count() - 1) as u32);
    let schedule = vec![
        TimedClusterEvent {
            time: SimTime::from_hours(6),
            event: ClusterEvent::RemoveRack { rack: doomed },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(12),
            event: ClusterEvent::AddRack,
        },
    ];
    let run = || {
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
        let mut sim = Simulation::new(topology.clone(), dynasore(&graph, &topology), &graph)
            .with_cluster_events(schedule.clone());
        let report = sim.run(trace).unwrap();
        let after = sim.topology().clone();
        (report, after)
    };
    let (report, after) = run();
    assert_eq!(report.availability(), 1.0, "shrink must not lose any view");
    assert_eq!(report.unreachable_reads(), 0);
    assert!(after.is_rack_retired(doomed));
    // Dense indices survive: the retired rack keeps its slot, the new rack
    // extends the index space, and one rack's worth of capacity is back.
    assert_eq!(after.rack_count(), topology.rack_count() + 1);
    assert_eq!(after.active_rack_count(), topology.rack_count());
    // Byte-identical replay.
    let (report_b, _) = run();
    assert_eq!(report, report_b);
}

/// A decommission landing *mid-drain*: one of the rack's servers is already
/// draining when the whole rack is removed. Both steps are graceful
/// (machine-to-machine evacuation), so the composition costs no
/// persistent-tier recovery and loses nothing.
#[test]
fn remove_rack_mid_drain_stays_graceful() {
    let graph = graph();
    let topology = topology();
    let doomed = RackId::new((topology.rack_count() - 1) as u32);
    let draining: MachineId = topology
        .servers()
        .iter()
        .map(|s| s.machine())
        .find(|&m| topology.rack_of(m).unwrap() == doomed)
        .unwrap();
    let schedule = vec![
        TimedClusterEvent {
            time: SimTime::from_hours(6),
            event: ClusterEvent::DrainMachine { machine: draining },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(8),
            event: ClusterEvent::RemoveRack { rack: doomed },
        },
    ];
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
    let mut sim = Simulation::new(topology.clone(), dynasore(&graph, &topology), &graph)
        .with_cluster_events(schedule);
    let report = sim.run(trace).unwrap();
    assert_eq!(report.availability(), 1.0);
    assert_eq!(report.unreachable_reads(), 0);
    assert_eq!(
        report.recovery_messages(),
        0,
        "drain + decommission is a graceful ladder: no persistent-tier recovery"
    );
    assert!(sim.topology().is_rack_retired(doomed));
}

/// The acceptance gate for elastic shrink: run the decommission-under-load
/// scenario with the *sharded* durable tier attached, then cold-reopen the
/// on-disk shards and fetch every user who wrote during the run — the set
/// of acknowledged-durable views is a superset of everything evacuated off
/// the removed rack, so zero of them may be missing and each must carry its
/// last acknowledged payload.
#[test]
fn decommission_under_load_survives_a_cold_sharded_reopen() {
    let graph = graph();
    let topology = topology();
    let runner = runner();
    let dir = std::env::temp_dir().join(format!(
        "dynasore-adversarial-shrink-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = ShardedConfig {
        shards: 4,
        ..ShardedConfig::default()
    };
    let tier = SimDurableTier::open_sharded(&dir, shards).unwrap();

    let quiet = runner
        .quiet_baseline(topology.clone(), &graph, dynasore(&graph, &topology))
        .unwrap();
    let cell = runner
        .run(
            ScenarioKind::DecommissionUnderLoad,
            topology.clone(),
            &graph,
            dynasore(&graph, &topology),
            &quiet,
            Some(Box::new(tier)),
        )
        .unwrap();
    assert_eq!(
        cell.availability, 1.0,
        "a graceful decommission must not lose any view"
    );
    assert_eq!(
        cell.report.durable_io().unwrap().appends,
        cell.report.write_count()
    );

    // The same script the runner expanded: every writer and her last
    // acknowledged write time (the trace is time-sorted, so the last insert
    // wins).
    let script = ScenarioKind::DecommissionUnderLoad
        .script(&graph, &topology, &runner.scenario)
        .unwrap();
    let mut last_write: BTreeMap<UserId, SimTime> = BTreeMap::new();
    for request in &script.trace {
        if !request.is_read() {
            last_write.insert(request.user, request.time);
        }
    }
    assert!(!last_write.is_empty());

    // Cold reopen: the tier was dropped when the run finished, so this
    // replays the shard files from disk exactly as a restart would.
    let reopened = ShardedLogStore::open(&dir, shards).unwrap();
    assert_eq!(reopened.user_count(), last_write.len());
    for (&user, &time) in &last_write {
        let view = reopened.fetch(user);
        let latest = view
            .latest()
            .unwrap_or_else(|| panic!("user {user} lost across the shrink"));
        let fill = (user.index() as u8).wrapping_add(time.as_secs() as u8);
        assert_eq!(latest.payload().len(), SIM_EVENT_BYTES);
        assert!(
            latest.payload().iter().all(|&b| b == fill),
            "user {user}: stale payload after cold reopen"
        );
    }
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}
