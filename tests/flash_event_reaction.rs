//! Integration test of the flash-event behaviour (§4.6): DynaSoRe must
//! replicate a suddenly popular view while the spike lasts and evict the
//! extra replicas soon after it ends.

use dynasore::prelude::*;
use dynasore::workload::TimedMutation;

#[test]
fn flash_event_grows_and_then_shrinks_replication() {
    let users = 1_200;
    let seed = 5;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, seed).unwrap();
    let topology = Topology::tree(3, 3, 4, 1).unwrap();

    let target = UserId::new(17);
    // Compressed version of the paper's experiment: spike from day 1 to
    // day 3 of a 5-day run.
    let plan = FlashEventPlan::random(
        &graph,
        target,
        100,
        SimTime::from_days(1),
        SimTime::from_days(3),
        seed,
    )
    .unwrap();
    let mutations: Vec<TimedMutation> = plan.mutations();

    let engine = DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(users, 30))
        .initial_placement(InitialPlacement::HierarchicalMetis { seed })
        .build(&graph)
        .unwrap();

    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 5, seed).unwrap();
    let mut sim = Simulation::new(topology, engine, &graph).with_mutations(mutations);

    let mut before_spike = Vec::new();
    let mut during_spike = Vec::new();
    let mut after_spike = Vec::new();
    sim.run_with_probe(trace, 6 * 3_600, |time, engine, _graph| {
        let replicas = engine.replica_count(target);
        if time < SimTime::from_days(1) {
            before_spike.push(replicas);
        } else if time < SimTime::from_days(3) {
            during_spike.push(replicas);
        } else if time >= SimTime::from_days(4) {
            // Give the system one day to react to the end of the spike, as
            // in the paper ("eviction before the end of the following day").
            after_spike.push(replicas);
        }
    })
    .unwrap();

    let base = before_spike.iter().copied().max().unwrap_or(1);
    let peak = during_spike.iter().copied().max().unwrap_or(0);
    let settled = after_spike.last().copied().unwrap_or(usize::MAX);

    assert!(
        peak > base,
        "the spike should create replicas (before: {base}, peak: {peak})"
    );
    assert!(
        settled <= base + 1,
        "replicas should be evicted after the spike (peak: {peak}, settled: {settled})"
    );
}
