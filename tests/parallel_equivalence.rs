//! Serial-vs-parallel byte-identity of the simulation driver.
//!
//! `Simulation::with_threads(n)` batches consecutive write requests through
//! the engines' `handle_write_batch` hook — rack-sharded worker threads for
//! DynaSoRe, serial replay for engines without a parallel path. The
//! contract is absolute: a same-seed run must produce a byte-identical
//! [`SimReport`] for every thread count, with plain traces, with a failure
//! schedule interleaved, and with a durable tier attached. These tests are
//! the safety net the parallel driver is allowed to exist under.

use dynasore::prelude::*;
use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_sim::SimReport;
use dynasore_types::{MachineId, Message, MessageClass, RackId, TrafficSink, UserId};

const USERS: usize = 500;
const SEED: u64 = 97;
const THREADS: [usize; 3] = [1, 2, 4];

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    Topology::tree(3, 2, 5, 1).unwrap() // 6 racks, 30 servers, 6 brokers.
}

fn dynasore(graph: &SocialGraph, topology: &Topology) -> DynaSoReEngine {
    DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(USERS, 40))
        .initial_placement(InitialPlacement::Random { seed: SEED })
        .build(graph)
        .unwrap()
}

fn spar(graph: &SocialGraph, topology: &Topology) -> SparEngine {
    SparEngine::new(
        graph,
        topology,
        MemoryBudget::with_extra_percent(USERS, 40),
        SEED,
    )
    .unwrap()
}

/// A deterministic trace with long write runs — so parallel batches
/// actually form — punctuated by reads (forced flush points) and spanning
/// ~45 simulated hours, so hourly ticks and the full failure schedule fall
/// inside it.
fn write_heavy_trace(graph: &SocialGraph) -> Vec<Request> {
    let users = graph.user_count() as u64;
    let mut requests = Vec::new();
    let mut t = 0u64;
    for block in 0..100u64 {
        for k in 0..200u64 {
            let u = ((block.wrapping_mul(977) + k.wrapping_mul(7_919)) % users) as u32;
            t += 7;
            requests.push(Request::write(SimTime::from_secs(t), UserId::new(u)));
        }
        for k in 0..20u64 {
            let u = ((block.wrapping_mul(131) + k.wrapping_mul(2_711)) % users) as u32;
            t += 11;
            requests.push(Request::read(SimTime::from_secs(t), UserId::new(u)));
        }
    }
    requests
}

/// The determinism suite's failure schedule: a machine crash/recovery, a
/// rack outage, a drain and a capacity addition interleaved with the trace.
fn failure_schedule() -> Vec<TimedClusterEvent> {
    vec![
        TimedClusterEvent {
            time: SimTime::from_hours(6),
            event: ClusterEvent::MachineDown {
                machine: MachineId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(18),
            event: ClusterEvent::MachineUp {
                machine: MachineId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(26),
            event: ClusterEvent::RackDown {
                rack: RackId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(30),
            event: ClusterEvent::RackUp {
                rack: RackId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(34),
            event: ClusterEvent::DrainMachine {
                machine: MachineId::new(2),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(40),
            event: ClusterEvent::AddRack,
        },
    ]
}

fn run<E: PlacementEngine>(
    engine: E,
    graph: &SocialGraph,
    topology: &Topology,
    threads: usize,
    failures: bool,
    durable_tag: Option<&str>,
) -> SimReport {
    let trace = write_heavy_trace(graph);
    let mut sim = Simulation::new(topology.clone(), engine, graph).with_threads(threads);
    if failures {
        sim = sim.with_cluster_events(failure_schedule());
    }
    let dir = durable_tag.map(|tag| {
        let dir = std::env::temp_dir().join(format!(
            "dynasore-par-eq-{tag}-t{threads}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    if let Some(dir) = &dir {
        let tier = SimDurableTier::open(dir, LogConfig::default()).unwrap();
        sim = sim.with_durable_tier(Box::new(tier));
    }
    let report = sim.run(trace).unwrap();
    drop(sim);
    if let Some(dir) = &dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    report
}

/// Asserts that the reports at every thread count are byte-identical to the
/// single-thread run, down to the debug rendering (which includes every
/// field, traffic time series included).
fn assert_thread_count_independent(reports: Vec<(usize, SimReport)>) {
    let (_, baseline) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report,
            baseline,
            "engine {}: {threads}-thread run diverged from serial",
            baseline.engine_name()
        );
        assert_eq!(
            format!("{report:?}"),
            format!("{baseline:?}"),
            "engine {}: {threads}-thread debug rendering diverged",
            baseline.engine_name()
        );
    }
}

#[test]
fn parallel_reports_match_serial_for_all_engines() {
    let graph = graph();
    let topology = topology();
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(
                        dynasore(&graph, &topology),
                        &graph,
                        &topology,
                        t,
                        false,
                        None,
                    ),
                )
            })
            .collect(),
    );
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(spar(&graph, &topology), &graph, &topology, t, false, None),
                )
            })
            .collect(),
    );
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(
                        StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                        &graph,
                        &topology,
                        t,
                        false,
                        None,
                    ),
                )
            })
            .collect(),
    );
}

#[test]
fn parallel_reports_match_serial_under_failures() {
    let graph = graph();
    let topology = topology();
    let reports: Vec<(usize, SimReport)> = THREADS
        .iter()
        .map(|&t| {
            (
                t,
                run(
                    dynasore(&graph, &topology),
                    &graph,
                    &topology,
                    t,
                    true,
                    None,
                ),
            )
        })
        .collect();
    // The schedule really fired: recovery traffic is visible in the report.
    assert!(reports[0].1.recovery_messages() > 0);
    assert_thread_count_independent(reports);
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(spar(&graph, &topology), &graph, &topology, t, true, None),
                )
            })
            .collect(),
    );
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(
                        StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                        &graph,
                        &topology,
                        t,
                        true,
                        None,
                    ),
                )
            })
            .collect(),
    );
}

#[test]
fn parallel_reports_match_serial_with_durable_tier() {
    let graph = graph();
    let topology = topology();
    let reports: Vec<(usize, SimReport)> = THREADS
        .iter()
        .map(|&t| {
            (
                t,
                run(
                    dynasore(&graph, &topology),
                    &graph,
                    &topology,
                    t,
                    true,
                    Some("dynasore"),
                ),
            )
        })
        .collect();
    // The tier really engaged: appends and a recovery replay are recorded.
    let io = reports[0].1.durable_io().expect("durable tier attached");
    assert!(io.appends > 0);
    assert!(io.replays > 0);
    assert_thread_count_independent(reports);
    assert_thread_count_independent(
        THREADS
            .iter()
            .map(|&t| {
                (
                    t,
                    run(
                        spar(&graph, &topology),
                        &graph,
                        &topology,
                        t,
                        true,
                        Some("spar"),
                    ),
                )
            })
            .collect(),
    );
}

/// The engine-level contract, checked directly so a driver change can never
/// make the suite vacuous: DynaSoRe must *accept* a big-enough batch, the
/// message multiset across all worker sinks must equal the serial replay's,
/// and the engine must be behaviorally identical afterwards (observed
/// through a follow-up request sequence).
#[test]
fn dynasore_batch_hook_accepts_and_matches_serial() {
    let graph = graph();
    let topology = topology();
    let mut serial = dynasore(&graph, &topology);
    // Converge placement a little so writes fan out to real replica sets.
    let mut warm: Vec<Message> = Vec::new();
    for k in 0..(2 * USERS as u64) {
        let user = UserId::new(((k * 7_919) % USERS as u64) as u32);
        warm.clear();
        serial.handle_read(
            user,
            graph.followees(user),
            SimTime::from_secs(1),
            &mut warm,
        );
    }
    let mut parallel = serial.clone();

    let writes: Vec<(UserId, SimTime)> = (0..2_000u64)
        .map(|k| {
            (
                UserId::new(((k * 7_919) % USERS as u64) as u32),
                SimTime::from_secs(2),
            )
        })
        .collect();

    let mut serial_out: Vec<Message> = Vec::new();
    for &(user, time) in &writes {
        serial.handle_write(user, time, &mut serial_out);
    }

    let mut sinks: Vec<Vec<Message>> = vec![Vec::new(); 4];
    let mut slots: Vec<&mut (dyn TrafficSink + Send)> = sinks
        .iter_mut()
        .map(|s| s as &mut (dyn TrafficSink + Send))
        .collect();
    assert!(
        parallel.handle_write_batch(&writes, &mut slots),
        "engine declined a {}-write batch over {} racks",
        writes.len(),
        topology.rack_count()
    );

    // Same message multiset (order across workers is free; content is not).
    let key = |m: &Message| {
        (
            m.from.index(),
            m.to.index(),
            matches!(m.class, MessageClass::Protocol),
        )
    };
    let mut serial_keys: Vec<_> = serial_out.iter().map(key).collect();
    let mut parallel_keys: Vec<_> = sinks.iter().flatten().map(key).collect();
    serial_keys.sort_unstable();
    parallel_keys.sort_unstable();
    assert_eq!(serial_keys, parallel_keys);

    // Behaviorally identical engines afterwards: an identical follow-up
    // request sequence must produce identical message streams.
    let mut a_out: Vec<Message> = Vec::new();
    let mut b_out: Vec<Message> = Vec::new();
    for k in 0..1_000u64 {
        let user = UserId::new(((k * 131) % USERS as u64) as u32);
        serial.handle_write(user, SimTime::from_secs(3), &mut a_out);
        parallel.handle_write(user, SimTime::from_secs(3), &mut b_out);
        serial.handle_read(
            user,
            graph.followees(user),
            SimTime::from_secs(3),
            &mut a_out,
        );
        parallel.handle_read(
            user,
            graph.followees(user),
            SimTime::from_secs(3),
            &mut b_out,
        );
    }
    assert_eq!(a_out, b_out);
    for u in 0..USERS as u32 {
        assert_eq!(
            serial.replica_count(UserId::new(u)),
            parallel.replica_count(UserId::new(u)),
            "replica count diverged for user {u}"
        );
    }
    assert_eq!(serial.memory_usage(), parallel.memory_usage());
}
