//! End-to-end acceptance test of the serving front-end: a client drives
//! reads and writes through the full auth → admission → flow-budget
//! pipeline against a live cluster; a spammy user is throttled with
//! `Throttled` *before* the engine while everyone else proceeds; the
//! `/metrics` scrape is lint-clean; and a graceful shutdown followed by a
//! cold reopen of the durable tier serves every acknowledged write.

use std::sync::Arc;

use dynasore::prelude::*;
use dynasore::serve::{RequestEnvelope, ResponseBody};
use dynasore::types::{lint_prometheus, validate_jsonl, StatusCode};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dynasore-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline scenario from the issue: authenticated clients read and
/// write through the pipeline; the spammy user exhausts her flow budget and
/// is rejected with `Throttled` before generating a single engine message;
/// the bystanders' requests keep flowing; `/metrics` lints clean and counts
/// the rejections.
#[test]
fn spammy_user_is_throttled_before_the_engine_while_others_proceed() {
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 13).unwrap();
    let topology = Topology::tree(2, 2, 3, 1).unwrap();
    let spammer = UserId::new(0);
    let alice = UserId::new(1);
    let bob = UserId::new(2);
    let spam_limit = 4u64;

    let server = LoopbackServer::spawn(
        &graph,
        topology,
        StoreConfig::default(),
        ServeConfig {
            tokens: vec![
                ("tok-spammer".to_string(), spammer),
                ("tok-alice".to_string(), alice),
                ("tok-bob".to_string(), bob),
            ],
            flow_limits: vec![(spammer, spam_limit)],
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert!(server.healthz().ready);

    // An unauthenticated envelope never reaches the engine.
    let resp = server.handle(RequestEnvelope::write(alice, b"no token".to_vec()));
    assert_eq!(resp.status, StatusCode::Unauthorized);

    // Baseline engine write count: the flow-budget gate must keep the
    // spammer from adding to it once her budget is gone.
    let writes_before = server.store_stats().persistent_writes;

    // The spammer burns her whole budget, then keeps hammering.
    let mut spam_ok = 0u64;
    let mut spam_throttled = 0u64;
    for i in 0..(spam_limit + 6) {
        let resp = server.handle(
            RequestEnvelope::write(spammer, format!("spam {i}").into_bytes())
                .with_token("tok-spammer"),
        );
        match resp.status {
            StatusCode::Ok => spam_ok += 1,
            StatusCode::Throttled => spam_throttled += 1,
            other => panic!("spammer got {other}"),
        }
    }
    assert_eq!(spam_ok, spam_limit);
    assert_eq!(spam_throttled, 6);
    // Exactly `spam_limit` writes reached the engine: throttled envelopes
    // generated zero engine messages.
    assert_eq!(
        server.store_stats().persistent_writes - writes_before,
        spam_limit
    );

    // The bystanders are untouched by the spammer's exhaustion.
    let resp = server.handle(
        RequestEnvelope::write(alice, b"hello from alice".to_vec()).with_token("tok-alice"),
    );
    assert_eq!(resp.status, StatusCode::Ok);
    let resp = server.handle(RequestEnvelope::read_feed(bob).with_token("tok-bob"));
    assert_eq!(resp.status, StatusCode::Ok);
    let resp =
        server.handle(RequestEnvelope::read(bob, vec![alice, spammer]).with_token("tok-bob"));
    assert_eq!(resp.status, StatusCode::Ok);
    match resp.body {
        ResponseBody::Views(views) => assert_eq!(views.len(), 2),
        other => panic!("expected views, got {other:?}"),
    }

    // `/metrics` lints clean and the counters agree with what we observed.
    let metrics = server.metrics();
    lint_prometheus(&metrics).expect("metrics pass the Prometheus lint");
    assert!(
        metrics.contains("dynasore_throttled_envelopes_total 6"),
        "throttle counter missing: {metrics}"
    );
    assert!(
        metrics.contains("dynasore_auth_failures_total 1"),
        "auth-failure counter missing: {metrics}"
    );
    // The trace timeline is a valid flight-recorder export.
    validate_jsonl(&server.trace_jsonl()).expect("trace timeline validates");

    server.shutdown().unwrap();
    assert!(!server.healthz().ready);
}

/// Graceful shutdown drains and syncs the durable tier: a cold reopen of
/// the same directory — a brand-new cluster and pipeline over the same
/// bytes — serves every acknowledged write through the front-end.
#[test]
fn acknowledged_writes_survive_shutdown_and_cold_reopen() {
    let dir = temp_dir("cold-reopen");
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, 150, 17).unwrap();
    let topology = Topology::tree(2, 2, 3, 1).unwrap();
    let authors: Vec<UserId> = graph.users().take(8).collect();

    // First life: acknowledged writes through the pipeline, then a graceful
    // shutdown (drain + flush + sync).
    {
        let store = Arc::new(
            ShardedLogStore::open(
                &dir,
                ShardedConfig {
                    shards: 2,
                    ..ShardedConfig::default()
                },
            )
            .unwrap(),
        );
        let server = LoopbackServer::spawn_with_store(
            &graph,
            topology.clone(),
            StoreConfig::default(),
            ServeConfig::default(),
            store,
        )
        .unwrap();
        for (i, &author) in authors.iter().enumerate() {
            let resp = server.handle(RequestEnvelope::write(
                author,
                format!("durable {i}").into_bytes(),
            ));
            assert!(resp.is_success(), "write {i} not acknowledged: {resp:?}");
        }
        server.shutdown().unwrap();
        // Shutdown is idempotent.
        server.shutdown().unwrap();
    }

    // Second life: a cold reopen over the same directory (the shard count is
    // pinned by the manifest). Every acknowledged write must be served back
    // through the read path.
    let store = Arc::new(
        ShardedLogStore::open(
            &dir,
            ShardedConfig {
                shards: 2,
                ..ShardedConfig::default()
            },
        )
        .unwrap(),
    );
    let server = LoopbackServer::spawn_with_store(
        &graph,
        topology,
        StoreConfig::default(),
        ServeConfig::default(),
        store,
    )
    .unwrap();
    assert!(server.healthz().ready);
    for (i, &author) in authors.iter().enumerate() {
        let resp = server.handle(RequestEnvelope::read(author, vec![author]));
        assert_eq!(resp.status, StatusCode::Ok);
        let views = match resp.body {
            ResponseBody::Views(views) => views,
            other => panic!("expected views, got {other:?}"),
        };
        let latest = views[0].latest().expect("author view has the write");
        assert_eq!(
            latest.payload(),
            format!("durable {i}").as_bytes(),
            "acknowledged write for {author} lost across the cold reopen"
        );
    }
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
