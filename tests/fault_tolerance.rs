//! Fault-injection scenarios across every engine and the live store: the
//! cluster-dynamics subsystem must survive machine and rack failures with
//! full eventual availability, pay for lost masters with persistent-tier
//! recovery traffic, drain machines without touching the durable store, and
//! absorb capacity added under load.

use dynasore::prelude::*;
use dynasore::types::{MachineId, RackId};
use dynasore_baselines::{SparEngine, StaticPlacement};

const USERS: usize = 600;
const SEED: u64 = 23;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    Topology::tree(3, 2, 5, 1).unwrap() // 6 racks, 24 servers, 6 brokers.
}

fn dynasore(graph: &SocialGraph, topology: &Topology) -> DynaSoReEngine {
    DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(USERS, 50))
        .initial_placement(InitialPlacement::Random { seed: SEED })
        .build(graph)
        .unwrap()
}

fn outage_schedule() -> Vec<TimedClusterEvent> {
    vec![
        TimedClusterEvent {
            time: SimTime::from_hours(4),
            event: ClusterEvent::RackDown {
                rack: RackId::new(0),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(16),
            event: ClusterEvent::RackUp {
                rack: RackId::new(0),
            },
        },
    ]
}

/// Every engine survives a scheduled rack outage with 100% availability and
/// (for the engines that lose masters) nonzero recovery traffic.
#[test]
fn all_engines_survive_a_rack_outage() {
    let graph = graph();
    let topology = topology();
    let engines: Vec<Box<dyn PlacementEngine>> = vec![
        Box::new(dynasore(&graph, &topology)),
        Box::new(
            SparEngine::new(
                &graph,
                &topology,
                MemoryBudget::with_extra_percent(USERS, 50),
                SEED,
            )
            .unwrap(),
        ),
        Box::new(StaticPlacement::random(&graph, &topology, SEED).unwrap()),
    ];
    for engine in engines {
        let name = engine.name().to_string();
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
        let mut sim = Simulation::new(topology.clone(), engine, &graph)
            .with_cluster_events(outage_schedule());
        let report = sim.run(trace).unwrap();
        assert_eq!(
            report.availability(),
            1.0,
            "{name}: a rack outage must not lose any view for good"
        );
        assert_eq!(report.unreachable_reads(), 0, "{name}");
        assert!(
            report.recovery_messages() > 0,
            "{name}: re-creating lost masters must cost persistent-tier traffic"
        );
    }
}

/// A flash event *during* a rack outage: the two failure axes compose. The
/// suddenly popular view must still gain replicas while part of the cluster
/// is dark.
#[test]
fn flash_event_during_an_outage_still_replicates() {
    let graph = graph();
    let topology = topology();
    let engine = dynasore(&graph, &topology);
    let celebrity = UserId::new(7);
    let flash = FlashEventPlan::random(
        &graph,
        celebrity,
        80,
        SimTime::from_hours(6),
        SimTime::from_hours(20),
        SEED,
    )
    .unwrap();
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
    let mut sim = Simulation::new(topology, engine, &graph)
        .with_mutations(flash.mutations())
        .with_cluster_events(outage_schedule());
    let mut peak_replicas = 0usize;
    let report = sim
        .run_with_probe(trace, 3_600, |_, engine, _| {
            peak_replicas = peak_replicas.max(engine.replica_count(celebrity));
        })
        .unwrap();
    assert_eq!(report.availability(), 1.0);
    assert!(
        peak_replicas >= 2,
        "the hot view should gain replicas despite the outage (peak {peak_replicas})"
    );
}

/// A rolling restart: drain every server of a rack one by one (no recovery
/// traffic), bring the rack back, then crash a machine of another rack (which
/// does cost recovery traffic). Capacity accounting follows along.
#[test]
fn rolling_drain_then_crash() {
    let graph = graph();
    let topology = topology();
    let mut engine = dynasore(&graph, &topology);
    let mut out: Vec<Message> = Vec::new();

    // Warm the placement so drains actually move state.
    for u in 0..USERS as u32 {
        let user = UserId::new(u);
        let targets = graph.followees(user).to_vec();
        engine.handle_read(user, &targets, SimTime::from_secs(u as u64), &mut out);
        out.clear();
    }

    let healthy_capacity = engine.memory_usage().capacity_slots;
    let rack0: Vec<MachineId> = topology
        .servers()
        .iter()
        .map(|s| s.machine())
        .filter(|&m| topology.rack_of(m).unwrap() == RackId::new(0))
        .collect();
    for &machine in &rack0 {
        engine.on_cluster_change(
            ClusterEvent::DrainMachine { machine },
            SimTime::ZERO,
            &mut out,
        );
    }
    assert!(
        out.iter().all(|m| !m.involves_persistent()),
        "rolling drains must never touch the persistent tier"
    );
    assert!(engine.memory_usage().capacity_slots < healthy_capacity);
    for user in graph.users() {
        assert!(engine.replica_count(user) >= 1);
    }

    for &machine in &rack0 {
        engine.on_cluster_change(ClusterEvent::MachineUp { machine }, SimTime::ZERO, &mut out);
    }
    assert_eq!(engine.memory_usage().capacity_slots, healthy_capacity);

    out.clear();
    let victim = topology.servers()[20].machine(); // a rack-5 server
    engine.on_cluster_change(
        ClusterEvent::MachineDown { machine: victim },
        SimTime::ZERO,
        &mut out,
    );
    for user in graph.users() {
        assert!(engine.replica_count(user) >= 1);
    }
    assert_eq!(engine.unreachable_reads(), 0);
}

/// The optional file-backed recovery path: the same rack-outage simulation,
/// with a log-structured durable tier attached. Every write is mirrored to
/// disk and each recovery replays the log from real bytes, so the report
/// measures actual recovery I/O next to the message counts — and stays
/// deterministic across runs.
#[test]
fn simulated_outage_replays_real_bytes_with_a_file_backed_tier() {
    let graph = graph();
    let topology = topology();

    let run = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("dynasore-faults-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tier = SimDurableTier::open(&dir, LogConfig::default()).unwrap();
        let engine = dynasore(&graph, &topology);
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
        let mut sim = Simulation::new(topology.clone(), engine, &graph)
            .with_cluster_events(outage_schedule())
            .with_durable_tier(Box::new(tier));
        let report = sim.run(trace).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        report
    };

    let report = run("a");
    let io = report.durable_io().expect("durable tier was attached");
    assert_eq!(io.appends, report.write_count());
    assert!(io.replays >= 1, "the rack outage must trigger a replay");
    assert!(io.bytes_replayed > 0, "recovery must read real bytes");
    assert_eq!(report.availability(), 1.0);
    assert!(report.recovery_messages() > 0);

    // Byte-deterministic: a second run over a fresh directory produces the
    // identical report, durable I/O included.
    let report_b = run("b");
    assert_eq!(report, report_b);

    // And the tier-less run of the same schedule is unaffected: no durable
    // section, same traffic as before the feature existed.
    let engine = dynasore(&graph, &topology);
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
    let mut sim =
        Simulation::new(topology.clone(), engine, &graph).with_cluster_events(outage_schedule());
    let plain = sim.run(trace).unwrap();
    assert!(plain.durable_io().is_none());
    assert_eq!(
        plain.traffic().grand_total(),
        report.traffic().grand_total()
    );
}

/// The same outage simulation over the *sharded* durable tier: recovery
/// replays all shards, the report carries the parallel-recovery critical
/// path (the slowest shard's bytes), and the whole thing stays
/// byte-deterministic — the wall-clock flusher is forced off inside
/// `SimDurableTier::open_sharded`, so batch boundaries depend only on the
/// trace.
#[test]
fn simulated_outage_over_a_sharded_tier_reports_the_critical_path() {
    let graph = graph();
    let topology = topology();

    let run = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "dynasore-faults-sharded-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tier = SimDurableTier::open_sharded(
            &dir,
            ShardedConfig {
                shards: 4,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let engine = dynasore(&graph, &topology);
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
        let mut sim = Simulation::new(topology.clone(), engine, &graph)
            .with_cluster_events(outage_schedule())
            .with_durable_tier(Box::new(tier));
        let report = sim.run(trace).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        report
    };

    let report = run("a");
    let io = report.durable_io().expect("durable tier was attached");
    assert_eq!(io.appends, report.write_count());
    assert_eq!(io.tier_shards, 4);
    assert!(io.replays >= 1, "the rack outage must trigger a replay");
    assert!(io.bytes_replayed > 0, "recovery must read real bytes");
    assert!(
        io.critical_path_bytes > 0 && io.critical_path_bytes <= io.bytes_replayed,
        "the critical path is the max shard, bounded by the total \
         (critical {} vs total {})",
        io.critical_path_bytes,
        io.bytes_replayed
    );
    // With 600 users spread over 4 shards, no shard holds everything: the
    // parallel replay bound is strictly better than the serial one.
    assert!(
        io.critical_path_bytes < io.bytes_replayed,
        "4 shards must split the replay work"
    );
    assert_eq!(report.availability(), 1.0);

    // Byte-deterministic, shards included.
    let report_b = run("b");
    assert_eq!(report, report_b);
}

/// Capacity doubling mid-run: schedule AddRack events inside a simulation
/// and verify the run completes with the grown cluster accounted for.
#[test]
fn capacity_grows_mid_run() {
    let graph = graph();
    let topology = topology();
    let engine = dynasore(&graph, &topology);
    let before_racks = topology.rack_count();
    let growth: Vec<TimedClusterEvent> = (0..3)
        .map(|i| TimedClusterEvent {
            time: SimTime::from_hours(6 + i),
            event: ClusterEvent::AddRack,
        })
        .collect();
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED).unwrap();
    let mut sim = Simulation::new(topology, engine, &graph).with_cluster_events(growth);
    let report = sim.run(trace).unwrap();
    assert_eq!(sim.topology().rack_count(), before_racks + 3);
    assert_eq!(report.availability(), 1.0);
    assert_eq!(report.recovery_messages(), 0);
    // The grown cluster's memory is visible in the report.
    let slots_per_rack = report.memory_usage().capacity_slots / (before_racks + 3);
    assert!(slots_per_rack > 0);
}
