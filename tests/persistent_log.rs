//! Crash-recovery and compaction properties of the file-backed persistent
//! tier.
//!
//! The central guarantee: for *any* sequence of writes/overwrites/deletes
//! and *any* byte offset a crash truncates the log at, reopening recovers
//! exactly the acknowledged prefix — every record wholly below the cut, and
//! nothing of the torn tail, which the checksummed framing detects and never
//! serves.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dynasore::store::{
    GroupCommitConfig, LogConfig, LogStructuredStore, ShardedConfig, ShardedLogStore,
};
use dynasore::types::{Error, UserId};
use proptest::prelude::*;

/// A fresh directory per test case, unique across parallel tests and
/// proptest cases.
fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dynasore-persistent-log-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One segment only, so a global byte offset addresses the whole log.
fn single_segment() -> LogConfig {
    LogConfig {
        segment_max_bytes: u64::MAX,
        sync_on_append: false,
        group_commit: None,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Append(u32, Vec<u8>),
    Delete(u32),
}

/// Applies one op to the reference model (user → payload list; a view's
/// version equals the list length because capacity is never hit here).
fn apply_to_model(model: &mut BTreeMap<u32, Vec<Vec<u8>>>, op: &Op) {
    match op {
        Op::Append(user, payload) => model.entry(*user).or_default().push(payload.clone()),
        Op::Delete(user) => {
            model.remove(user);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random write/overwrite/delete sequences, crash (truncate) at an
    /// arbitrary byte offset, reopen: the recovered index equals the model
    /// map of the acknowledged prefix — the torn tail record is detected by
    /// the checksum and never served.
    #[test]
    fn crash_at_any_offset_recovers_exactly_the_acknowledged_prefix(
        raw_ops in proptest::collection::vec((0u32..100, 0u32..8), 1..120),
        cut_permille in 0u64..1_001,
    ) {
        let dir = unique_dir("crash");
        let store = LogStructuredStore::open(&dir, single_segment()).unwrap();

        // Drive the store, remembering each op and the log length (= the
        // record boundary) after it. Flushing after every op makes the
        // logical length physical, so truncation offsets are meaningful.
        let mut ops: Vec<(Op, u64)> = Vec::new();
        for (i, &(selector, user)) in raw_ops.iter().enumerate() {
            let u = UserId::new(user);
            let op = if selector < 75 {
                let payload = vec![(i as u8) ^ (user as u8); (selector as usize % 24) + 1];
                store.append(u, payload.clone()).unwrap();
                Op::Append(user, payload)
            } else {
                store.delete(u).unwrap();
                Op::Delete(user)
            };
            store.flush().unwrap();
            ops.push((op, store.bytes_on_disk()));
        }
        let total = store.bytes_on_disk();
        drop(store);

        // Crash: truncate the single segment at an arbitrary byte offset.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .expect("segment file");
        prop_assert_eq!(std::fs::metadata(&segment).unwrap().len(), total);
        let cut = total * cut_permille / 1_000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Reopen and compare against the model of the acknowledged prefix:
        // exactly the ops whose record ends at or before the cut.
        let recovered = LogStructuredStore::open(&dir, single_segment()).unwrap();
        let mut model: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        let mut last_boundary = 0u64;
        for (op, boundary) in &ops {
            if *boundary <= cut {
                apply_to_model(&mut model, op);
                last_boundary = *boundary;
            }
        }
        for user in 0u32..8 {
            let view = recovered.fetch(UserId::new(user));
            match model.get(&user) {
                None => prop_assert!(
                    view.is_empty(),
                    "user {user} must be empty after cut {cut}/{total}"
                ),
                Some(payloads) => {
                    let got: Vec<&[u8]> = view.iter().map(|e| e.payload()).collect();
                    let want: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
                    prop_assert_eq!(got, want, "user {} after cut {}/{}", user, cut, total);
                    prop_assert_eq!(view.version(), payloads.len() as u64);
                }
            }
        }
        prop_assert_eq!(recovered.user_count(), model.len());

        // The replay accounting agrees byte for byte: everything up to the
        // last whole record was replayed, the rest was a detected torn tail.
        // (A cut inside the 8-byte segment magic leaves nothing replayable.)
        let stats = recovered.recovery_stats();
        let (expected_replayed, expected_torn) = if cut < 8 {
            (0, cut)
        } else {
            let replayed = last_boundary.max(8);
            (replayed, cut - replayed)
        };
        prop_assert_eq!(stats.bytes_replayed, expected_replayed);
        prop_assert_eq!(stats.torn_bytes, expected_torn);

        // The repaired log accepts new appends and reads them back.
        let u = UserId::new(0);
        let before = recovered.fetch(u).len();
        recovered.append(u, b"post-crash".to_vec()).unwrap();
        let after = recovered.fetch(u);
        prop_assert_eq!(after.len(), before + 1);
        prop_assert_eq!(after.latest().unwrap().payload(), b"post-crash");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// One huge segment per shard, group commit on, no wall-clock flusher —
/// every on-disk boundary is driven (and recorded) by the test itself.
fn sharded_single_segment(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        flush_interval: None,
        log: LogConfig {
            segment_max_bytes: u64::MAX,
            sync_on_append: false,
            group_commit: Some(GroupCommitConfig {
                sync_on_commit: false,
                ..GroupCommitConfig::default()
            }),
        },
        ..ShardedConfig::default()
    }
}

/// The single `.log` segment file of shard `i` under a sharded root.
fn shard_segment(dir: &std::path::Path, i: usize) -> PathBuf {
    std::fs::read_dir(dir.join(format!("shard-{i:04}")))
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("shard segment file")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded analogue of the crash proptest above, with group commit
    /// in play: random writes/deletes fan out over 4 shards, each shard's
    /// log is independently truncated at an arbitrary byte offset (four
    /// independent crashes of one machine), and the reopened store must
    /// equal the union of each shard's *acknowledged-and-committed* prefix.
    /// Ops are grouped into batch frames (one frame per flush), so the
    /// model is unit-at-a-time: a cut inside a frame loses that whole
    /// frame's ops — group commit's all-or-nothing promise — and never any
    /// earlier frame.
    #[test]
    fn sharded_crash_recovers_each_shards_committed_prefix(
        raw_ops in proptest::collection::vec((0u32..100, 0u32..16), 1..100),
        cut_permille in proptest::collection::vec(0u64..1_001, 4..5),
    ) {
        const SHARDS: usize = 4;
        let dir = unique_dir("sharded-crash");
        let store = ShardedLogStore::open(&dir, sharded_single_segment(SHARDS)).unwrap();

        // Per shard: completed units (ops + the frame boundary that made
        // them durable-on-truncation-safe) and the group still open.
        let mut units: Vec<Vec<(Vec<Op>, u64)>> = vec![Vec::new(); SHARDS];
        let mut open: Vec<Vec<Op>> = vec![Vec::new(); SHARDS];
        let close = |store: &ShardedLogStore, s: usize, open: &mut Vec<Vec<Op>>,
                         units: &mut Vec<Vec<(Vec<Op>, u64)>>| {
            store.shard(s).flush().unwrap();
            let group = std::mem::take(&mut open[s]);
            if !group.is_empty() {
                units[s].push((group, store.shard(s).bytes_on_disk()));
            }
        };
        for (i, &(selector, user)) in raw_ops.iter().enumerate() {
            let u = UserId::new(user);
            let s = store.shard_index_of(u);
            if selector < 75 {
                let payload = vec![(i as u8) ^ (user as u8); (selector as usize % 24) + 1];
                store.append_version(u, payload.clone()).unwrap();
                open[s].push(Op::Append(user, payload));
                // Close the frame now and then so frames carry 1..n ops.
                if selector % 5 == 0 {
                    close(&store, s, &mut open, &mut units);
                }
            } else {
                // A delete commits the open batch before its tombstone, so
                // give the batch its own unit first: the tombstone must be
                // able to tear off alone, leaving the appends applied.
                close(&store, s, &mut open, &mut units);
                store.delete(u).unwrap();
                open[s].push(Op::Delete(user));
                close(&store, s, &mut open, &mut units);
            }
        }
        for s in 0..SHARDS {
            close(&store, s, &mut open, &mut units);
        }
        let totals: Vec<u64> = (0..SHARDS).map(|s| store.shard(s).bytes_on_disk()).collect();
        drop(store);

        // Four independent crashes: truncate every shard's segment.
        let mut cuts = Vec::with_capacity(SHARDS);
        for s in 0..SHARDS {
            let segment = shard_segment(&dir, s);
            prop_assert_eq!(std::fs::metadata(&segment).unwrap().len(), totals[s]);
            let cut = totals[s] * cut_permille[s] / 1_000;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&segment)
                .unwrap()
                .set_len(cut)
                .unwrap();
            cuts.push(cut);
        }

        // Model: per shard, exactly the units whose frame ends at or below
        // the cut — all of a surviving frame, none of a torn one.
        let recovered = ShardedLogStore::open(&dir, sharded_single_segment(SHARDS)).unwrap();
        let mut model: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        let mut last_boundary = [0u64; SHARDS];
        for s in 0..SHARDS {
            for (group, boundary) in &units[s] {
                if *boundary <= cuts[s] {
                    for op in group {
                        apply_to_model(&mut model, op);
                    }
                    last_boundary[s] = *boundary;
                }
            }
        }
        for user in 0u32..16 {
            let view = recovered.fetch(UserId::new(user));
            match model.get(&user) {
                None => prop_assert!(view.is_empty(), "user {user} must be empty"),
                Some(payloads) => {
                    let got: Vec<&[u8]> = view.iter().map(|e| e.payload()).collect();
                    let want: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
                    prop_assert_eq!(got, want, "user {}", user);
                    prop_assert_eq!(view.version(), payloads.len() as u64);
                }
            }
        }
        prop_assert_eq!(recovered.user_count(), model.len());

        // Per-shard replay accounting: each shard replayed exactly up to
        // its last whole frame below its own cut.
        let stats = recovered.recovery_stats();
        for s in 0..SHARDS {
            let (expected_replayed, expected_torn) = if cuts[s] < 8 {
                (0, cuts[s])
            } else {
                let replayed = last_boundary[s].max(8);
                (replayed, cuts[s] - replayed)
            };
            prop_assert_eq!(
                stats.per_shard[s].bytes_replayed, expected_replayed,
                "shard {} replayed bytes (cut {}/{})", s, cuts[s], totals[s]
            );
            prop_assert_eq!(
                stats.per_shard[s].torn_bytes, expected_torn,
                "shard {} torn bytes", s
            );
        }

        // The repaired shards accept and serve new appends.
        let u = UserId::new(3);
        let before = recovered.fetch(u).len();
        recovered.append_version(u, b"post-crash".to_vec()).unwrap();
        prop_assert_eq!(recovered.fetch(u).len(), before + 1);

        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Group commit's two-sided contract, observed from outside: an append is
/// *acknowledged* (visible to fetch) before it is durable, and the batch it
/// rides in hits the disk as one frame — a crash loses the whole batch or
/// none of it, never a slice.
#[test]
fn unflushed_batch_is_invisible_on_disk_and_a_torn_batch_is_lost_whole() {
    let dir = unique_dir("batch-unit");
    let config = LogConfig {
        segment_max_bytes: u64::MAX,
        sync_on_append: false,
        group_commit: Some(GroupCommitConfig {
            sync_on_commit: false,
            ..GroupCommitConfig::default()
        }),
    };
    let store = LogStructuredStore::open(&dir, config).unwrap();
    let a = UserId::new(1);
    let b = UserId::new(2);

    // Batch 1: five appends to user A, committed.
    for i in 0..5u8 {
        store.append_version(a, vec![i; 10]).unwrap();
    }
    store.flush().unwrap();
    let after_first = store.bytes_on_disk();

    // Batch 2: three appends to user B, acknowledged but NOT committed.
    for i in 0..3u8 {
        store.append_version(b, vec![0x40 | i; 10]).unwrap();
    }
    assert_eq!(store.pending_records(), 3);
    assert_eq!(store.fetch(b).len(), 3, "acks are visible immediately");

    // On disk, the pending batch does not exist at all — a crash here
    // loses all three acknowledged appends together, and nothing else.
    let (disk_index, _) = LogStructuredStore::read_back(&dir).unwrap();
    assert_eq!(disk_index.get(&a).map(|v| v.len()), Some(5));
    assert!(!disk_index.contains_key(&b), "pending batch leaked to disk");

    // Commit batch 2, then crash inside its frame: header, middle, last
    // byte — wherever the tear lands, the whole batch vanishes and batch 1
    // is untouched.
    store.flush().unwrap();
    let after_second = store.bytes_on_disk();
    assert!(after_second > after_first);
    drop(store);
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("segment file");
    let backup = std::fs::read(&segment).unwrap();
    for cut in [
        after_first + 1,
        (after_first + after_second) / 2,
        after_second - 1,
    ] {
        std::fs::write(&segment, &backup).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let (index, stats) = LogStructuredStore::read_back(&dir).unwrap();
        assert_eq!(
            index.get(&a).map(|v| v.len()),
            Some(5),
            "cut {cut}: the committed batch must survive"
        );
        assert!(
            !index.contains_key(&b),
            "cut {cut}: a torn batch must be lost as a unit, not served partially"
        );
        assert_eq!(stats.bytes_replayed, after_first);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deterministic multi-seed compaction check: content (index + values,
/// versions included) is identical before and after compaction — and after
/// a reopen that replays only the compacted segments — while total segment
/// bytes strictly shrink whenever superseded records exist.
#[test]
fn compaction_is_content_identical_and_strictly_shrinks() {
    for seed in 0u64..4 {
        let dir = unique_dir("compact");
        let config = LogConfig {
            segment_max_bytes: 512, // Exercise rotation and multi-segment compaction.
            sync_on_append: false,
            group_commit: None,
        };
        let store = LogStructuredStore::open(&dir, config).unwrap();
        let users = 6u32;
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..150 {
            let r = step();
            let user = UserId::new((r % users as u64) as u32);
            if r % 10 == 9 {
                store.delete(user).unwrap();
            } else {
                store
                    .append(user, vec![(r >> 8) as u8; (r % 20) as usize + 1])
                    .unwrap();
            }
        }

        let before: Vec<_> = (0..users).map(|u| store.fetch(UserId::new(u))).collect();
        let stats = store.compact().unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "seed {seed}: superseded records must shrink the log, got {stats:?}"
        );
        let after: Vec<_> = (0..users).map(|u| store.fetch(UserId::new(u))).collect();
        assert_eq!(before, after, "seed {seed}: compaction changed the state");

        // What recovery replays from the compacted segments is the same
        // state again — versions included.
        drop(store);
        let reopened = LogStructuredStore::open(&dir, config).unwrap();
        let replayed: Vec<_> = (0..users).map(|u| reopened.fetch(UserId::new(u))).collect();
        assert_eq!(
            before, replayed,
            "seed {seed}: reopen after compaction diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A compaction pass that fails mid-way must leave no orphan snapshot
/// segments behind: they carry higher sequence numbers than the still-active
/// segment, so a surviving orphan would replay *after* post-failure appends
/// on the next open and silently revert them.
#[test]
fn failed_compaction_leaves_no_orphans_and_post_failure_appends_survive() {
    let dir = unique_dir("failed-compaction");
    let store = LogStructuredStore::open(&dir, single_segment()).unwrap();
    // Small views that compaction snapshots successfully…
    for u in 0..4u32 {
        store.append(UserId::new(u), vec![u as u8; 32]).unwrap();
        store.append(UserId::new(u), vec![u as u8; 32]).unwrap();
    }
    // …and one whose snapshot exceeds the record frame cap (every single
    // event fits, their 128-event sum does not), failing the pass mid-way.
    let big = UserId::new(5);
    for i in 0..128u32 {
        store.append(big, vec![i as u8; 200 * 1024]).unwrap();
    }
    let err = store.compact();
    assert!(matches!(err, Err(Error::InvalidConfig(_))), "{err:?}");

    // The store keeps serving, and appends made after the failure are what
    // a reopen sees — the orphan snapshots, had they survived, would have
    // reverted them.
    store
        .append(UserId::new(0), b"after-failure".to_vec())
        .unwrap();
    store.sync().unwrap();
    drop(store);
    let reopened = LogStructuredStore::open(&dir, single_segment()).unwrap();
    let v0 = reopened.fetch(UserId::new(0));
    assert_eq!(v0.len(), 3);
    assert_eq!(v0.latest().unwrap().payload(), b"after-failure");
    assert_eq!(reopened.fetch(big).len(), 128);
    assert_eq!(reopened.recovery_stats().torn_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compacting twice in a row is stable: the second pass has no superseded
/// records to drop, and the state still round-trips.
#[test]
fn recompaction_is_stable() {
    let dir = unique_dir("recompact");
    let store = LogStructuredStore::open(&dir, single_segment()).unwrap();
    for i in 0..40u32 {
        store.append(UserId::new(i % 3), vec![i as u8; 10]).unwrap();
    }
    store.compact().unwrap();
    let once: Vec<_> = (0..3).map(|u| store.fetch(UserId::new(u))).collect();
    let second = store.compact().unwrap();
    let twice: Vec<_> = (0..3).map(|u| store.fetch(UserId::new(u))).collect();
    assert_eq!(once, twice);
    // Nothing was superseded, so the log cannot shrink meaningfully — but it
    // must not grow either (the old snapshots are dropped with their
    // segments).
    assert!(second.bytes_after <= second.bytes_before);
    std::fs::remove_dir_all(&dir).unwrap();
}
