//! Crash-recovery and compaction properties of the file-backed persistent
//! tier.
//!
//! The central guarantee: for *any* sequence of writes/overwrites/deletes
//! and *any* byte offset a crash truncates the log at, reopening recovers
//! exactly the acknowledged prefix — every record wholly below the cut, and
//! nothing of the torn tail, which the checksummed framing detects and never
//! serves.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dynasore::store::{LogConfig, LogStructuredStore};
use dynasore::types::{Error, UserId};
use proptest::prelude::*;

/// A fresh directory per test case, unique across parallel tests and
/// proptest cases.
fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dynasore-persistent-log-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One segment only, so a global byte offset addresses the whole log.
fn single_segment() -> LogConfig {
    LogConfig {
        segment_max_bytes: u64::MAX,
        sync_on_append: false,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Append(u32, Vec<u8>),
    Delete(u32),
}

/// Applies one op to the reference model (user → payload list; a view's
/// version equals the list length because capacity is never hit here).
fn apply_to_model(model: &mut BTreeMap<u32, Vec<Vec<u8>>>, op: &Op) {
    match op {
        Op::Append(user, payload) => model.entry(*user).or_default().push(payload.clone()),
        Op::Delete(user) => {
            model.remove(user);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random write/overwrite/delete sequences, crash (truncate) at an
    /// arbitrary byte offset, reopen: the recovered index equals the model
    /// map of the acknowledged prefix — the torn tail record is detected by
    /// the checksum and never served.
    #[test]
    fn crash_at_any_offset_recovers_exactly_the_acknowledged_prefix(
        raw_ops in proptest::collection::vec((0u32..100, 0u32..8), 1..120),
        cut_permille in 0u64..1_001,
    ) {
        let dir = unique_dir("crash");
        let store = LogStructuredStore::open(&dir, single_segment()).unwrap();

        // Drive the store, remembering each op and the log length (= the
        // record boundary) after it. Flushing after every op makes the
        // logical length physical, so truncation offsets are meaningful.
        let mut ops: Vec<(Op, u64)> = Vec::new();
        for (i, &(selector, user)) in raw_ops.iter().enumerate() {
            let u = UserId::new(user);
            let op = if selector < 75 {
                let payload = vec![(i as u8) ^ (user as u8); (selector as usize % 24) + 1];
                store.append(u, payload.clone()).unwrap();
                Op::Append(user, payload)
            } else {
                store.delete(u).unwrap();
                Op::Delete(user)
            };
            store.flush().unwrap();
            ops.push((op, store.bytes_on_disk()));
        }
        let total = store.bytes_on_disk();
        drop(store);

        // Crash: truncate the single segment at an arbitrary byte offset.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .expect("segment file");
        prop_assert_eq!(std::fs::metadata(&segment).unwrap().len(), total);
        let cut = total * cut_permille / 1_000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Reopen and compare against the model of the acknowledged prefix:
        // exactly the ops whose record ends at or before the cut.
        let recovered = LogStructuredStore::open(&dir, single_segment()).unwrap();
        let mut model: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        let mut last_boundary = 0u64;
        for (op, boundary) in &ops {
            if *boundary <= cut {
                apply_to_model(&mut model, op);
                last_boundary = *boundary;
            }
        }
        for user in 0u32..8 {
            let view = recovered.fetch(UserId::new(user));
            match model.get(&user) {
                None => prop_assert!(
                    view.is_empty(),
                    "user {user} must be empty after cut {cut}/{total}"
                ),
                Some(payloads) => {
                    let got: Vec<&[u8]> = view.iter().map(|e| e.payload()).collect();
                    let want: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
                    prop_assert_eq!(got, want, "user {} after cut {}/{}", user, cut, total);
                    prop_assert_eq!(view.version(), payloads.len() as u64);
                }
            }
        }
        prop_assert_eq!(recovered.user_count(), model.len());

        // The replay accounting agrees byte for byte: everything up to the
        // last whole record was replayed, the rest was a detected torn tail.
        // (A cut inside the 8-byte segment magic leaves nothing replayable.)
        let stats = recovered.recovery_stats();
        let (expected_replayed, expected_torn) = if cut < 8 {
            (0, cut)
        } else {
            let replayed = last_boundary.max(8);
            (replayed, cut - replayed)
        };
        prop_assert_eq!(stats.bytes_replayed, expected_replayed);
        prop_assert_eq!(stats.torn_bytes, expected_torn);

        // The repaired log accepts new appends and reads them back.
        let u = UserId::new(0);
        let before = recovered.fetch(u).len();
        recovered.append(u, b"post-crash".to_vec()).unwrap();
        let after = recovered.fetch(u);
        prop_assert_eq!(after.len(), before + 1);
        prop_assert_eq!(after.latest().unwrap().payload(), b"post-crash");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Deterministic multi-seed compaction check: content (index + values,
/// versions included) is identical before and after compaction — and after
/// a reopen that replays only the compacted segments — while total segment
/// bytes strictly shrink whenever superseded records exist.
#[test]
fn compaction_is_content_identical_and_strictly_shrinks() {
    for seed in 0u64..4 {
        let dir = unique_dir("compact");
        let config = LogConfig {
            segment_max_bytes: 512, // Exercise rotation and multi-segment compaction.
            sync_on_append: false,
        };
        let store = LogStructuredStore::open(&dir, config).unwrap();
        let users = 6u32;
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..150 {
            let r = step();
            let user = UserId::new((r % users as u64) as u32);
            if r % 10 == 9 {
                store.delete(user).unwrap();
            } else {
                store
                    .append(user, vec![(r >> 8) as u8; (r % 20) as usize + 1])
                    .unwrap();
            }
        }

        let before: Vec<_> = (0..users).map(|u| store.fetch(UserId::new(u))).collect();
        let stats = store.compact().unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "seed {seed}: superseded records must shrink the log, got {stats:?}"
        );
        let after: Vec<_> = (0..users).map(|u| store.fetch(UserId::new(u))).collect();
        assert_eq!(before, after, "seed {seed}: compaction changed the state");

        // What recovery replays from the compacted segments is the same
        // state again — versions included.
        drop(store);
        let reopened = LogStructuredStore::open(&dir, config).unwrap();
        let replayed: Vec<_> = (0..users).map(|u| reopened.fetch(UserId::new(u))).collect();
        assert_eq!(
            before, replayed,
            "seed {seed}: reopen after compaction diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A compaction pass that fails mid-way must leave no orphan snapshot
/// segments behind: they carry higher sequence numbers than the still-active
/// segment, so a surviving orphan would replay *after* post-failure appends
/// on the next open and silently revert them.
#[test]
fn failed_compaction_leaves_no_orphans_and_post_failure_appends_survive() {
    let dir = unique_dir("failed-compaction");
    let store = LogStructuredStore::open(&dir, single_segment()).unwrap();
    // Small views that compaction snapshots successfully…
    for u in 0..4u32 {
        store.append(UserId::new(u), vec![u as u8; 32]).unwrap();
        store.append(UserId::new(u), vec![u as u8; 32]).unwrap();
    }
    // …and one whose snapshot exceeds the record frame cap (every single
    // event fits, their 128-event sum does not), failing the pass mid-way.
    let big = UserId::new(5);
    for i in 0..128u32 {
        store.append(big, vec![i as u8; 200 * 1024]).unwrap();
    }
    let err = store.compact();
    assert!(matches!(err, Err(Error::InvalidConfig(_))), "{err:?}");

    // The store keeps serving, and appends made after the failure are what
    // a reopen sees — the orphan snapshots, had they survived, would have
    // reverted them.
    store
        .append(UserId::new(0), b"after-failure".to_vec())
        .unwrap();
    store.sync().unwrap();
    drop(store);
    let reopened = LogStructuredStore::open(&dir, single_segment()).unwrap();
    let v0 = reopened.fetch(UserId::new(0));
    assert_eq!(v0.len(), 3);
    assert_eq!(v0.latest().unwrap().payload(), b"after-failure");
    assert_eq!(reopened.fetch(big).len(), 128);
    assert_eq!(reopened.recovery_stats().torn_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compacting twice in a row is stable: the second pass has no superseded
/// records to drop, and the state still round-trips.
#[test]
fn recompaction_is_stable() {
    let dir = unique_dir("recompact");
    let store = LogStructuredStore::open(&dir, single_segment()).unwrap();
    for i in 0..40u32 {
        store.append(UserId::new(i % 3), vec![i as u8; 10]).unwrap();
    }
    store.compact().unwrap();
    let once: Vec<_> = (0..3).map(|u| store.fetch(UserId::new(u))).collect();
    let second = store.compact().unwrap();
    let twice: Vec<_> = (0..3).map(|u| store.fetch(UserId::new(u))).collect();
    assert_eq!(once, twice);
    // Nothing was superseded, so the log cannot shrink meaningfully — but it
    // must not grow either (the old snapshots are dropped with their
    // segments).
    assert!(second.bytes_after <= second.bytes_before);
    std::fs::remove_dir_all(&dir).unwrap();
}
