//! Determinism and accounting-equivalence guards for the request hot path.
//!
//! The dense-slab replica storage and the inline `TrafficSink` accounting
//! must not reintroduce run-to-run nondeterminism (the PR-1 flakiness came
//! from hash-seed-dependent iteration) nor change what the old
//! `Vec<Message>` push-then-account protocol measured: the same seed must
//! produce a byte-identical [`SimReport`], and inline accounting must match
//! a manual replay that buffers every message and charges it afterwards.

use dynasore::prelude::*;
use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_sim::SimReport;
use dynasore_topology::Tier;
use dynasore_types::{MachineId, Message, MessageClass, RackId, TrafficSink};

const USERS: usize = 500;
const SEED: u64 = 97;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    Topology::tree(3, 2, 5, 1).unwrap()
}

fn run_once<E: PlacementEngine>(engine: E, graph: &SocialGraph, topology: &Topology) -> SimReport {
    let trace = SyntheticTraceGenerator::paper_defaults(graph, 2, SEED).unwrap();
    let mut sim = Simulation::new(topology.clone(), engine, graph);
    sim.run(trace).unwrap()
}

fn dynasore(graph: &SocialGraph, topology: &Topology) -> DynaSoReEngine {
    DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(USERS, 40))
        .initial_placement(InitialPlacement::Random { seed: SEED })
        .build(graph)
        .unwrap()
}

/// Two runs with the same seed must agree on every measured quantity, for
/// every engine kind — byte-identical reports, including the per-switch
/// traffic and its time series.
#[test]
fn same_seed_produces_identical_reports() {
    let graph = graph();
    let topology = topology();

    let runs: Vec<(SimReport, SimReport)> = vec![
        (
            run_once(dynasore(&graph, &topology), &graph, &topology),
            run_once(dynasore(&graph, &topology), &graph, &topology),
        ),
        (
            run_once(
                SparEngine::new(
                    &graph,
                    &topology,
                    MemoryBudget::with_extra_percent(USERS, 40),
                    SEED,
                )
                .unwrap(),
                &graph,
                &topology,
            ),
            run_once(
                SparEngine::new(
                    &graph,
                    &topology,
                    MemoryBudget::with_extra_percent(USERS, 40),
                    SEED,
                )
                .unwrap(),
                &graph,
                &topology,
            ),
        ),
        (
            run_once(
                StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                &graph,
                &topology,
            ),
            run_once(
                StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                &graph,
                &topology,
            ),
        ),
    ];
    for (a, b) in &runs {
        assert_eq!(a, b, "engine {} is not deterministic", a.engine_name());
        // Belt and braces: the debug rendering (which includes every field,
        // time series included) must match byte for byte.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// A failure schedule interleaved with the trace: machine m1 (a rack-0
/// server) crashes at hour 6 and returns at hour 18, with a drain and a
/// capacity addition later in the run.
fn failure_schedule() -> Vec<TimedClusterEvent> {
    vec![
        TimedClusterEvent {
            time: SimTime::from_hours(6),
            event: ClusterEvent::MachineDown {
                machine: MachineId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(18),
            event: ClusterEvent::MachineUp {
                machine: MachineId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(26),
            event: ClusterEvent::RackDown {
                rack: RackId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(30),
            event: ClusterEvent::RackUp {
                rack: RackId::new(1),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(34),
            event: ClusterEvent::DrainMachine {
                machine: MachineId::new(2),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(40),
            event: ClusterEvent::AddRack,
        },
    ]
}

fn run_with_failures<E: PlacementEngine>(
    engine: E,
    graph: &SocialGraph,
    topology: &Topology,
) -> SimReport {
    let trace = SyntheticTraceGenerator::paper_defaults(graph, 2, SEED).unwrap();
    let mut sim =
        Simulation::new(topology.clone(), engine, graph).with_cluster_events(failure_schedule());
    sim.run(trace).unwrap()
}

/// A seeded simulation with a scheduled MachineDown/MachineUp pair (plus a
/// rack outage, a drain and a capacity addition) must be byte-identical
/// across runs for every engine kind, report nonzero recovery traffic, and
/// reach 100% eventual availability.
#[test]
fn failure_schedules_interleave_deterministically() {
    let graph = graph();
    let topology = topology();

    let runs: Vec<(SimReport, SimReport)> = vec![
        (
            run_with_failures(dynasore(&graph, &topology), &graph, &topology),
            run_with_failures(dynasore(&graph, &topology), &graph, &topology),
        ),
        (
            run_with_failures(
                SparEngine::new(
                    &graph,
                    &topology,
                    MemoryBudget::with_extra_percent(USERS, 40),
                    SEED,
                )
                .unwrap(),
                &graph,
                &topology,
            ),
            run_with_failures(
                SparEngine::new(
                    &graph,
                    &topology,
                    MemoryBudget::with_extra_percent(USERS, 40),
                    SEED,
                )
                .unwrap(),
                &graph,
                &topology,
            ),
        ),
        (
            run_with_failures(
                StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                &graph,
                &topology,
            ),
            run_with_failures(
                StaticPlacement::random(&graph, &topology, SEED).unwrap(),
                &graph,
                &topology,
            ),
        ),
    ];
    for (a, b) in &runs {
        assert_eq!(
            a,
            b,
            "engine {} is not deterministic under failures",
            a.engine_name()
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(
            a.recovery_messages() > 0,
            "engine {}: machine loss must cost recovery traffic",
            a.engine_name()
        );
        assert_eq!(
            a.availability(),
            1.0,
            "engine {}: every lost master must be recovered",
            a.engine_name()
        );
        assert_eq!(a.unreachable_reads(), 0, "engine {}", a.engine_name());
    }
}

/// A sink that counts messages per class while buffering them, mimicking
/// what the simulator's inline accounting observes.
#[derive(Default)]
struct BufferingSink {
    messages: Vec<Message>,
}

impl TrafficSink for BufferingSink {
    fn record(&mut self, message: Message) {
        self.messages.push(message);
    }
}

/// Inline sink accounting must measure exactly what the old protocol did:
/// buffer every message in a `Vec`, then charge each non-local one to the
/// switches on its path. Replays the same trace manually and compares every
/// tier total and message count against `Simulation::run`.
#[test]
fn inline_accounting_matches_buffered_replay() {
    let graph = graph();
    let topology = topology();

    // Keep the trace within the first tick interval so the manual replay
    // does not need to reproduce the simulator's tick/mutation scheduling.
    let trace: Vec<_> = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED)
        .unwrap()
        .filter(|r| r.time.as_secs() < 3_600)
        .collect();
    assert!(!trace.is_empty());

    let report = Simulation::new(topology.clone(), dynasore(&graph, &topology), &graph)
        .run(trace.clone())
        .unwrap();

    // Manual replay with the Vec<Message> protocol.
    let mut engine = dynasore(&graph, &topology);
    let mut account = dynasore_topology::TrafficAccount::hourly();
    let mut app = 0u64;
    let mut proto = 0u64;
    let mut sink = BufferingSink::default();
    for request in &trace {
        sink.messages.clear();
        if request.is_read() {
            let targets = graph.followees(request.user).to_vec();
            engine.handle_read(request.user, &targets, request.time, &mut sink);
        } else {
            engine.handle_write(request.user, request.time, &mut sink);
        }
        for message in &sink.messages {
            match message.class {
                MessageClass::Application => app += 1,
                MessageClass::Protocol => proto += 1,
            }
            if message.is_local() {
                continue;
            }
            let path = topology.path_switches(message.from, message.to);
            account.record(&path, message.class, request.time);
        }
    }

    assert_eq!(report.total_application_messages(), app);
    assert_eq!(report.total_protocol_messages(), proto);
    for tier in Tier::all() {
        assert_eq!(
            report.traffic().tier_total(tier),
            account.tier_total(tier),
            "tier {tier} totals diverge"
        );
    }
    assert_eq!(report.traffic().grand_total(), account.grand_total());
    assert_eq!(report.traffic().message_count(), account.message_count());
}
